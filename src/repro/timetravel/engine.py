"""Time-travel queries over the checkpoint store.

:class:`TimelineQuery` answers *omniscient* debugging questions —
"when was this address last written?", "find the Nth transition of
this expression" — without an always-on trace.  The trick (Transition
Watchpoints, and the LLDB live-reverse-debugging work) is the same one
``reverse_continue`` uses: recorded history is a checkpoint store plus
a deterministic machine, so any past interval can be *re-executed on
demand*.  A query

1. splits recorded history into windows bounded by checkpoints,
2. re-executes only the windows that can contain the answer (newest
   first for ``last-write``, oldest first for ``first-write``), with a
   recorder-private shadow store log attached
   (:class:`~repro.timetravel.store_log.StoreLogRecorder` — the fuzz
   oracle's shadow-recorder trick), and
3. re-lands on the answering event bit-identically — restore the
   nearest earlier checkpoint, ``run(event.app_instructions)``, and
   fingerprint — exactly the way ``reverse_continue`` re-lands stops.

Queries are side-effect-free unless documented otherwise: the engine
snapshots the live backend, detaches the controller's checkpoint store
for the duration (window replays must not feed the history that
defines them), and restores everything on exit.  Only
:meth:`TimelineQuery.seek_transition` moves the session — that is its
purpose — and it does so through
:meth:`repro.replay.ReverseController.seek`, so stops passed through
are re-recorded just as ``reverse_step`` would.

A window replay that halts or stops before reaching its recorded end
raises :class:`~repro.replay.ReplayDivergenceError`: recorded history
no longer reproduces, and no timeline answer derived from it would be
trustworthy.

Query results are cacheable per code version through
:class:`repro.harness.cache.TimelineQueryCache`; the cache key binds
the program content, backend, machine config, debug plan, and the
exact recorded-history extent, so a hit is only possible when
deterministic replay would reproduce the identical answer.
"""

from __future__ import annotations

import operator
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Optional

from repro.debugger.expressions import QUAD, parse_expression
from repro.errors import ReproError
from repro.replay.reverse import ReplayDivergenceError, ReverseController
from repro.timetravel.store_log import (PendingStoreReader, StoreEvent,
                                        StoreLogRecorder)

__all__ = ["TimelineQuery", "QueryResult", "TransitionEvent",
           "TimelineError"]


class TimelineError(ReproError):
    """A query that cannot be answered (bad target, out of range, ...)."""


@dataclass(frozen=True)
class TransitionEvent:
    """One value change of a watched expression during replay."""

    app_instructions: int
    pc: int
    old_value: object
    new_value: object


@dataclass
class QueryResult:
    """One timeline query's answer (JSON-able, wire- and cache-ready)."""

    query: str
    target: str
    found: bool
    #: Application-instruction ordinal of the answer (None if not found).
    app_instructions: Optional[int] = None
    #: PC of the answering instruction (from the recorded event — the
    #: re-landed machine has already advanced past it).
    pc: Optional[int] = None
    #: Landing ordinal; equals ``app_instructions`` (kept explicit so
    #: the re-land contract mirrors ``reverse-continue`` stop records).
    ordinal: Optional[int] = None
    #: For seek-transition: which transition (1-based) was landed on.
    transition: Optional[int] = None
    address: Optional[int] = None
    size: Optional[int] = None
    value: object = None
    old_value: object = None
    #: Architectural digest of the re-landed state.
    state_fingerprint: str = ""
    windows_scanned: int = 0
    instructions_replayed: int = 0
    from_cache: bool = False

    def to_dict(self) -> dict:
        """A JSON-serializable rendering (the wire/cache format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "QueryResult":
        """Rebuild a result from its :meth:`to_dict` rendering."""
        return cls(**record)

    def describe(self) -> str:
        """The REPL's one-line rendering of the answer."""
        if self.query in ("last-write", "first-write"):
            which = "Last" if self.query == "last-write" else "First"
            if not self.found:
                return f"No recorded write to {self.target}."
            return (f"{which} write to {self.target} "
                    f"[{self.address:#x}]: {self.old_value} -> {self.value} "
                    f"at instruction {self.app_instructions:,} "
                    f"(pc={self.pc:#x}).")
        if self.query == "seek-transition":
            return (f"Transition #{self.transition} of {self.target}: "
                    f"{self.old_value} -> {self.value} at "
                    f"instruction {self.app_instructions:,} "
                    f"(pc={self.pc:#x}).")
        if self.query == "value-at":
            return (f"{self.target} = {self.value} at instruction "
                    f"{self.app_instructions:,}.")
        if self.query == "seek-until":
            return (f"Condition {self.target} first holds at instruction "
                    f"{self.app_instructions:,} "
                    f"(value = {self.value}, pc={self.pc:#x}).")
        return f"{self.query}: {self.to_dict()}"


class TimelineQuery:
    """First-class query API over one session's recorded history.

    Bind it to a running :class:`~repro.replay.ReverseController`
    (``repro.api.timeline(...)`` builds the whole stack); every method
    returns a :class:`QueryResult`.  Window store logs and transition
    scans are memoized per (start, end) extent — deterministic replay
    makes them immutable for the controller's lifetime.
    """

    def __init__(self, controller: ReverseController, *,
                 cache=None, cache_scope: Optional[dict] = None):
        self.controller = controller
        self.backend = controller.backend
        self.machine = controller.machine
        self.cache = cache
        self._cache_scope = dict(cache_scope or {})
        self._window_events: dict[tuple[int, int], list[StoreEvent]] = {}
        self._window_transitions: dict[tuple[int, int, str],
                                       list[TransitionEvent]] = {}
        self._replayed = 0  # instructions re-executed (bench accounting)

    # -- queries -------------------------------------------------------------

    def last_write(self, target: str) -> QueryResult:
        """The newest store touching ``target`` (symbol or address).

        Scans windows newest-first and stops at the first window with a
        match, so on long traces only a suffix of history is replayed.
        Side-effect-free: the session is exactly where it was.
        """
        return self._write_query("last-write", target, newest_first=True)

    def first_write(self, target: str) -> QueryResult:
        """The oldest store touching ``target`` in recorded history."""
        return self._write_query("first-write", target, newest_first=False)

    def last_write_linear(self, target: str) -> QueryResult:
        """Ground-truth/naive ``last-write``: one unmemoized replay of
        the *entire* recorded trace from genesis, then a second full
        replay from genesis to land.  This is the rerun-from-genesis
        baseline the bisected path is benchmarked (and parity-tested)
        against; it never reads or feeds the window memos.
        """
        address, size = self._resolve_target(target)
        replayed_before = self._replayed
        with self._query_context():
            genesis = self.controller.store.oldest
            end = self._history_end()
            events = self._scan(genesis, end, memoize=False)
            matches = [e for e in events if e.overlaps(address, size)]
            event = matches[-1] if matches else None
            fingerprint = ""
            if event is not None:
                self._replay(genesis, event.app_instructions)
                fingerprint = self.backend.state_fingerprint()
        return self._write_result("last-write", target, address, size,
                                  event, fingerprint, windows_scanned=1,
                                  replayed=self._replayed - replayed_before)

    def seek_transition(self, expression: str, n: int) -> QueryResult:
        """Move the session to just after the Nth (1-based) transition
        of a static scalar ``expression``.

        This is the one query that relocates the live machine: after
        the bisected scan finds the transition, the controller seeks to
        its ordinal (re-recording stops passed through, exactly like
        ``rewind``).  Raises :class:`TimelineError` when fewer than N
        transitions exist.
        """
        expr = self._transition_expression(expression)
        if n < 1:
            raise TimelineError("transition ordinal is 1-based")
        # Capture the cache identity *before* relocating: a later lookup
        # is issued from the pre-seek position, so the answer must be
        # stored under that position too.
        payload = None
        if self.cache is not None:
            payload = self._cache_payload("seek-transition", [expression, n])
        cached = self._cache_load("seek-transition", [expression, n])
        replayed_before = self._replayed
        if cached is not None:
            event = TransitionEvent(cached.app_instructions, cached.pc,
                                    cached.old_value, cached.value)
        else:
            event = None
            seen = 0
            windows_scanned = 0
            with self._query_context():
                for checkpoint, end in self._windows():
                    transitions = self._transitions_in(
                        checkpoint, end, expression, expr)
                    windows_scanned += 1
                    if seen + len(transitions) >= n:
                        event = transitions[n - 1 - seen]
                        break
                    seen += len(transitions)
            if event is None:
                raise TimelineError(
                    f"only {seen} transition(s) of {expression!r} in "
                    f"recorded history")
        # Relocate the session onto the transition (the answering store
        # has committed at this ordinal; see store_log's timing notes).
        self.controller.seek(event.app_instructions)
        fingerprint = self.backend.state_fingerprint()
        if cached is not None:
            if (cached.state_fingerprint
                    and cached.state_fingerprint != fingerprint):
                raise ReplayDivergenceError(
                    f"seek-transition re-landed at "
                    f"{event.app_instructions:,} with a different state "
                    f"fingerprint than the cached answer — recorded "
                    f"history no longer reproduces")
            cached.from_cache = True
            return cached
        result = QueryResult(
            "seek-transition", expression, True,
            app_instructions=event.app_instructions, pc=event.pc,
            ordinal=event.app_instructions, transition=n,
            value=_jsonable(event.new_value),
            old_value=_jsonable(event.old_value),
            state_fingerprint=fingerprint,
            windows_scanned=windows_scanned,
            instructions_replayed=self._replayed - replayed_before)
        if payload is not None:
            self.cache.store(self.cache.key_for(payload), result,
                             payload=payload)
        return result

    def seek_until(self, expression: str, cmp: str,
                   value: int) -> QueryResult:
        """Move the session to the first point in recorded history
        where ``expression CMP value`` holds.

        A predicate-directed seek: windows are scanned oldest-first
        through the same memoized transition machinery as
        :meth:`seek_transition`, and the scan stops at the first window
        containing a satisfying value — on long traces only a prefix of
        history is replayed.  Like ``seek-transition`` this relocates
        the live machine (via :meth:`ReverseController.seek`, so stops
        passed through are re-recorded).  If the predicate already
        holds at the start of recorded history the session seeks there;
        if it never holds, :class:`TimelineError`.
        """
        expr = self._transition_expression(expression)
        predicate = _COMPARATORS.get(cmp)
        if predicate is None:
            raise TimelineError(
                f"unknown comparator {cmp!r}; expected one of "
                f"{', '.join(sorted(_COMPARATORS))}")
        target = f"{expression} {cmp} {value}"
        payload = None
        if self.cache is not None:
            payload = self._cache_payload("seek-until",
                                          [expression, cmp, value])
        cached = self._cache_load("seek-until", [expression, cmp, value])
        replayed_before = self._replayed
        windows_scanned = 0
        if cached is not None:
            landing = cached.app_instructions
            landing_value = cached.value
            landing_old = cached.old_value
        else:
            landing = None
            landing_value = None
            landing_old = None
            with self._query_context():
                genesis = self.controller.store.oldest
                # Window extents must be computed before the baseline
                # replay below rewinds the machine (history's end is
                # the live position).
                windows = self._windows()
                # Already true at the start of recorded history?
                self._replay(genesis, genesis.app_instructions)
                start_value = expr.evaluate(self.backend.resolver,
                                            self.machine.memory)
                if predicate(start_value, value):
                    landing = genesis.app_instructions
                    landing_value = start_value
                else:
                    for checkpoint, end in windows:
                        transitions = self._transitions_in(
                            checkpoint, end, expression, expr)
                        windows_scanned += 1
                        hit = next((t for t in transitions
                                    if predicate(t.new_value, value)), None)
                        if hit is not None:
                            landing = hit.app_instructions
                            landing_value = hit.new_value
                            landing_old = hit.old_value
                            break
            if landing is None:
                raise TimelineError(
                    f"{target} never holds in recorded history")
        self.controller.seek(landing)
        fingerprint = self.backend.state_fingerprint()
        if cached is not None:
            if (cached.state_fingerprint
                    and cached.state_fingerprint != fingerprint):
                raise ReplayDivergenceError(
                    f"seek-until re-landed at {landing:,} with a "
                    f"different state fingerprint than the cached answer "
                    f"— recorded history no longer reproduces")
            cached.from_cache = True
            return cached
        result = QueryResult(
            "seek-until", target, True, app_instructions=landing,
            pc=self.machine.pc, ordinal=landing,
            value=_jsonable(landing_value), old_value=_jsonable(landing_old),
            state_fingerprint=fingerprint, windows_scanned=windows_scanned,
            instructions_replayed=self._replayed - replayed_before)
        if payload is not None:
            self.cache.store(self.cache.key_for(payload), result,
                             payload=payload)
        return result

    def transitions(self, expression: str) -> list[TransitionEvent]:
        """Every transition of ``expression`` in recorded history
        (bisected scan; side-effect-free)."""
        expr = self._transition_expression(expression)
        out: list[TransitionEvent] = []
        with self._query_context():
            for checkpoint, end in self._windows():
                out.extend(self._transitions_in(checkpoint, end,
                                                expression, expr))
        return out

    def transitions_linear(self, expression: str) -> list[TransitionEvent]:
        """Ground-truth transition list: one unmemoized replay of the
        whole trace from genesis (parity reference for tests)."""
        expr = self._transition_expression(expression)
        with self._query_context():
            genesis = self.controller.store.oldest
            return self._scan_transitions(genesis, self._history_end(),
                                          expr)

    def value_at(self, expression: str, ordinal: int) -> QueryResult:
        """Evaluate ``expression`` as of application-instruction
        ``ordinal`` (bisect to the nearest checkpoint, replay the
        remainder).  Dynamic (indirect) expressions are allowed — the
        machine is fully materialized at the ordinal.  Side-effect-free.
        """
        try:
            expr = parse_expression(expression)
        except ReproError as exc:
            raise TimelineError(str(exc)) from exc
        genesis_app = self.controller.store.oldest.app_instructions
        now = self.machine.stats.app_instructions
        if not genesis_app <= ordinal <= now:
            raise TimelineError(
                f"ordinal {ordinal:,} is outside recorded history "
                f"[{genesis_app:,}, {now:,}]")
        cached = self._cache_load("value-at", [expression, ordinal])
        if cached is not None:
            cached.from_cache = True
            return cached
        replayed_before = self._replayed
        with self._query_context():
            checkpoint = self.controller.store.nearest_at_or_before(ordinal)
            if checkpoint is None:
                checkpoint = self.controller.store.oldest
            self._replay(checkpoint, ordinal)
            value = expr.evaluate(self.backend.resolver, self.machine.memory)
            fingerprint = self.backend.state_fingerprint()
            pc = self.machine.pc
        result = QueryResult(
            "value-at", expression, True, app_instructions=ordinal, pc=pc,
            ordinal=ordinal, value=_jsonable(value),
            state_fingerprint=fingerprint, windows_scanned=1,
            instructions_replayed=self._replayed - replayed_before)
        self._cache_store("value-at", [expression, ordinal], result)
        return result

    # -- write-query machinery ------------------------------------------------

    def _write_query(self, query: str, target: str, *,
                     newest_first: bool) -> QueryResult:
        address, size = self._resolve_target(target)
        cached = self._cache_load(query, [target])
        if cached is not None:
            cached.from_cache = True
            return cached
        replayed_before = self._replayed
        event = None
        fingerprint = ""
        windows_scanned = 0
        with self._query_context():
            windows = self._windows()
            if newest_first:
                windows = list(reversed(windows))
            for checkpoint, end in windows:
                events = self._scan(checkpoint, end)
                windows_scanned += 1
                matches = [e for e in events if e.overlaps(address, size)]
                if matches:
                    event = matches[-1] if newest_first else matches[0]
                    break
            if event is not None:
                landing = self.controller.store.nearest_at_or_before(
                    event.app_instructions - 1)
                if landing is None:
                    landing = self.controller.store.oldest
                self._replay(landing, event.app_instructions)
                fingerprint = self.backend.state_fingerprint()
        result = self._write_result(
            query, target, address, size, event, fingerprint,
            windows_scanned=windows_scanned,
            replayed=self._replayed - replayed_before)
        self._cache_store(query, [target], result)
        return result

    def _write_result(self, query: str, target: str, address: int,
                      size: int, event: Optional[StoreEvent],
                      fingerprint: str, *, windows_scanned: int,
                      replayed: int) -> QueryResult:
        if event is None:
            return QueryResult(query, target, False, address=address,
                               size=size, windows_scanned=windows_scanned,
                               instructions_replayed=replayed)
        return QueryResult(
            query, target, True, app_instructions=event.app_instructions,
            pc=event.pc, ordinal=event.app_instructions,
            address=event.address, size=event.size, value=event.value,
            old_value=event.old_value, state_fingerprint=fingerprint,
            windows_scanned=windows_scanned, instructions_replayed=replayed)

    # -- bounded re-execution ---------------------------------------------

    @contextmanager
    def _query_context(self):
        """Snapshot the live session; replay freely; restore exactly.

        The machine's checkpoint store is detached for the duration so
        window replays can never feed (or violate the monotonicity of)
        the history that defines them.
        """
        machine = self.machine
        saved = self.backend.snapshot()
        saved_store = machine.checkpoint_store
        saved_observer = machine.store_observer
        try:
            machine.checkpoint_store = None
            yield
        finally:
            machine.store_observer = saved_observer
            self.backend.restore(saved)
            machine.checkpoint_store = saved_store

    def _history_end(self) -> int:
        return self.machine.stats.app_instructions

    def _windows(self) -> list[tuple[object, int]]:
        """(checkpoint, end_app) extents covering recorded history."""
        checkpoints = list(self.controller.store)
        end = self._history_end()
        windows = []
        for i, checkpoint in enumerate(checkpoints):
            upper = (checkpoints[i + 1].app_instructions
                     if i + 1 < len(checkpoints) else end)
            if upper > checkpoint.app_instructions:
                windows.append((checkpoint, upper))
        return windows

    def _replay(self, checkpoint, target: int, *, observer=None,
                after_restore=None) -> None:
        """Restore ``checkpoint`` and run (non-stopping) to ``target``.

        Must be called inside :meth:`_query_context`.  ``stop_on_user``
        is cleared so the replay runs straight through user transitions
        (stop classification still happens; fingerprints exclude stats,
        so straight-through replay is bit-comparable to the original
        stop-and-resume execution).
        """
        machine = self.machine
        self.backend.restore(checkpoint.blob)
        machine.checkpoint_store = None
        machine.stop_on_user = False
        if after_restore is not None:
            after_restore()
        machine.store_observer = observer
        try:
            if target > machine.stats.app_instructions:
                self.backend.run(target)
        finally:
            machine.store_observer = None
        self._replayed += (machine.stats.app_instructions
                           - checkpoint.app_instructions)
        if machine.stats.app_instructions < target:
            state = "halted" if machine.halted else "stopped"
            raise ReplayDivergenceError(
                f"window replay from {checkpoint.app_instructions:,} "
                f"{state} at {machine.stats.app_instructions:,} before "
                f"reaching {target:,} — the recorded history no longer "
                f"reproduces (non-deterministic handler?)")

    def _scan(self, checkpoint, end: int, *,
              memoize: bool = True) -> list[StoreEvent]:
        """The window's shadow store log (memoized per extent)."""
        key = (checkpoint.app_instructions, end)
        if memoize:
            cached = self._window_events.get(key)
            if cached is not None:
                return cached
        recorder = StoreLogRecorder(self.machine)
        self._replay(checkpoint, end, observer=recorder)
        if memoize:
            self._window_events[key] = recorder.events
        return recorder.events

    def _transitions_in(self, checkpoint, end: int, expression: str,
                        expr) -> list[TransitionEvent]:
        key = (checkpoint.app_instructions, end, expression)
        cached = self._window_transitions.get(key)
        if cached is not None:
            return cached
        transitions = self._scan_transitions(checkpoint, end, expr)
        self._window_transitions[key] = transitions
        return transitions

    def _scan_transitions(self, checkpoint, end: int,
                          expr) -> list[TransitionEvent]:
        """Replay one window, recording changes of ``expr``'s value.

        The store observer fires before memory commits, so the
        post-store value is computed through a
        :class:`PendingStoreReader` overlay — evaluating the expression
        "as of" the store without touching machine state.
        """
        machine = self.machine
        resolver = self.backend.resolver
        extents = expr.addresses(resolver, None)
        transitions: list[TransitionEvent] = []
        current: list[object] = [None]

        def baseline():
            current[0] = expr.evaluate(resolver, machine.memory)

        def observer(address, size, value, old_value):
            if not any(address < a + s and a < address + size
                       for a, s in extents):
                return
            new_value = expr.evaluate(resolver, PendingStoreReader(
                machine.memory, address, size, value))
            if new_value != current[0]:
                transitions.append(TransitionEvent(
                    machine.stats.app_instructions, machine.pc,
                    current[0], new_value))
                current[0] = new_value

        self._replay(checkpoint, end, observer=observer,
                     after_restore=baseline)
        return transitions

    # -- target/expression resolution --------------------------------------

    def _resolve_target(self, target: str) -> tuple[int, int]:
        """A write-query target: a symbol name or a literal address."""
        try:
            return int(target, 0), QUAD
        except ValueError:
            pass
        try:
            address, size = self.backend.resolver.resolve(target)
        except ReproError as exc:
            raise TimelineError(str(exc)) from exc
        return address, min(size, QUAD) if size else QUAD

    def _transition_expression(self, expression: str):
        try:
            expr = parse_expression(expression)
        except ReproError as exc:
            raise TimelineError(str(exc)) from exc
        if not expr.is_static:
            raise TimelineError(
                f"{expression!r} is indirect; transition queries need a "
                f"statically-determinable address set (the paper's "
                f"virtual-memory/hardware restriction)")
        if expr.is_range:
            raise TimelineError(
                f"{expression!r} is a byte range; transition queries "
                f"watch scalar expressions")
        return expr

    # -- result cache -------------------------------------------------------

    def _cache_payload(self, query: str, args: list) -> dict:
        machine = self.machine
        payload = {
            "query": query,
            "args": [str(a) for a in args],
            "genesis": self.controller.store.oldest.app_instructions,
            "position": machine.stats.app_instructions,
            "stops": len(self.controller.stops),
            "backend": self.backend.name,
            "config": repr(machine.config),
            "watch": [wp.describe() for wp in
                      getattr(self.backend, "watchpoints", ())],
            "break": [bp.describe() for bp in
                      getattr(self.backend, "breakpoints", ())],
        }
        program = getattr(self.backend, "program", None)
        if program is not None:
            payload["program"] = program.content_digest()
        payload.update(self._cache_scope)
        return payload

    def _cache_load(self, query: str, args: list) -> Optional[QueryResult]:
        if self.cache is None:
            return None
        return self.cache.load(
            self.cache.key_for(self._cache_payload(query, args)))

    def _cache_store(self, query: str, args: list,
                     result: QueryResult) -> None:
        if self.cache is None:
            return
        payload = self._cache_payload(query, args)
        self.cache.store(self.cache.key_for(payload), result,
                         payload=payload)


#: Comparators accepted by :meth:`TimelineQuery.seek_until`.
_COMPARATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _jsonable(value):
    """Render an expression value wire- and cache-safe."""
    if isinstance(value, bytes):
        return value.hex(" ")
    return value
