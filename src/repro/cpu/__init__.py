"""CPU simulation: functional execution plus a cycle-level timing model.

* :mod:`repro.cpu.stats` -- counters collected during a run.
* :mod:`repro.cpu.predictor` -- hybrid branch predictor, BTB, RAS.
* :mod:`repro.cpu.timing` -- the single-pass timing model.
* :mod:`repro.cpu.functional` -- pure instruction semantics (ALU ops,
  branch conditions, sign handling).
* :mod:`repro.cpu.machine` -- the :class:`Machine`: fetch, DISE
  expansion, execute, trap delivery, statistics.

The machine executes functionally in program order while streaming
events into the timing model (width, ports, cache/TLB misses, flushes,
debugger transitions).  See DESIGN.md for why this decoupled style is a
faithful stand-in for the paper's SimpleScalar-based simulator at the
granularity its results depend on.
"""

from repro.cpu.machine import Machine, MachineRun, TrapEvent, TrapKind
from repro.cpu.stats import SimStats, TransitionKind
from repro.cpu.timing import TimingModel
from repro.cpu.predictor import BranchPredictor

__all__ = [
    "Machine",
    "MachineRun",
    "TrapEvent",
    "TrapKind",
    "SimStats",
    "TransitionKind",
    "TimingModel",
    "BranchPredictor",
]


def __getattr__(name: str):
    if name == "RunResult":  # deprecated pre-unification name
        from repro.cpu import machine

        return machine.RunResult  # emits the DeprecationWarning
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
