"""Branch prediction: hybrid direction predictor, BTB, return stack.

The paper's machine has "an 8K entry hybrid branch predictor [and a]
2K-entry BTB".  We implement a gshare/bimodal hybrid with a chooser
table, a direct-mapped BTB for indirect-target prediction, and a
16-entry return-address stack.

DISE branches are *not* predicted ("Because replacement sequences are
not fetched, DISE control transfers are not predicted" — Section 3);
they never reach this predictor.  The machine charges their taken-path
flush directly.
"""

from __future__ import annotations


_COUNTER_MAX = 3  # 2-bit saturating counters
_TAKEN_THRESHOLD = 2


class BranchPredictor:
    """Hybrid (gshare + bimodal + chooser) direction predictor."""

    def __init__(self, entries: int = 8192, btb_entries: int = 2048,
                 ras_depth: int = 16):
        if entries & (entries - 1):
            raise ValueError(f"predictor entries {entries} not a power of two")
        if btb_entries & (btb_entries - 1):
            raise ValueError(f"BTB entries {btb_entries} not a power of two")
        self._mask = entries - 1
        # Weakly taken initial state keeps loop warm-up penalties small.
        self._gshare = bytearray([2] * entries)
        self._bimodal = bytearray([2] * entries)
        self._chooser = bytearray([2] * entries)  # >=2 selects gshare
        self._history = 0
        self._btb: dict[int, int] = {}
        self._btb_mask = btb_entries - 1
        self._ras: list[int] = []
        self._ras_depth = ras_depth
        self.lookups = 0
        self.mispredictions = 0

    # -- conditional branches ------------------------------------------------

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict direction for the branch at ``pc``; train; return
        True when the prediction was correct."""
        self.lookups += 1
        index = (pc >> 2) & self._mask
        gindex = ((pc >> 2) ^ self._history) & self._mask
        use_gshare = self._chooser[index] >= _TAKEN_THRESHOLD
        g_pred = self._gshare[gindex] >= _TAKEN_THRESHOLD
        b_pred = self._bimodal[index] >= _TAKEN_THRESHOLD
        prediction = g_pred if use_gshare else b_pred
        correct = prediction == taken

        # Train components.
        self._gshare[gindex] = _train(self._gshare[gindex], taken)
        self._bimodal[index] = _train(self._bimodal[index], taken)
        if g_pred != b_pred:
            self._chooser[index] = _train(self._chooser[index],
                                          g_pred == taken)
        self._history = ((self._history << 1) | taken) & self._mask
        if not correct:
            self.mispredictions += 1
        return correct

    # -- indirect jumps / calls / returns -----------------------------------

    def push_return(self, return_pc: int) -> None:
        """Record a call's return address on the return-address stack."""
        self._ras.append(return_pc)
        if len(self._ras) > self._ras_depth:
            self._ras.pop(0)

    def predict_return(self, actual_target: int) -> bool:
        """Pop the RAS; return True when it predicted correctly."""
        self.lookups += 1
        predicted = self._ras.pop() if self._ras else None
        correct = predicted == actual_target
        if not correct:
            self.mispredictions += 1
        return correct

    def predict_indirect(self, pc: int, actual_target: int) -> bool:
        """Predict an indirect jump through the BTB; train; report."""
        self.lookups += 1
        index = (pc >> 2) & self._btb_mask
        correct = self._btb.get(index) == actual_target
        self._btb[index] = actual_target
        if not correct:
            self.mispredictions += 1
        return correct

    def reset(self) -> None:
        """Forget all learned state and zero the counters."""
        for table in (self._gshare, self._bimodal, self._chooser):
            for i in range(len(table)):
                table[i] = 2
        self._history = 0
        self._btb.clear()
        self._ras.clear()
        self.lookups = 0
        self.mispredictions = 0

    def reset_counters(self) -> None:
        """Zero lookup/misprediction counters, keeping learned state."""
        self.lookups = 0
        self.mispredictions = 0

    def snapshot(self) -> tuple:
        """Capture tables, history, BTB, RAS, and counters."""
        return (bytes(self._gshare), bytes(self._bimodal),
                bytes(self._chooser), self._history, dict(self._btb),
                list(self._ras), self.lookups, self.mispredictions)

    def restore(self, blob: tuple) -> None:
        """Reset the predictor to a previous :meth:`snapshot`."""
        (gshare, bimodal, chooser, self._history, btb, ras,
         self.lookups, self.mispredictions) = blob
        self._gshare = bytearray(gshare)
        self._bimodal = bytearray(bimodal)
        self._chooser = bytearray(chooser)
        self._btb = dict(btb)
        self._ras = list(ras)

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0


def _train(counter: int, taken: bool) -> int:
    if taken:
        return counter + 1 if counter < _COUNTER_MAX else counter
    return counter - 1 if counter > 0 else counter
