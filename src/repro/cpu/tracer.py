"""Dynamic-instruction tracing with DISEPC annotations.

A development and teaching aid: attach a :class:`Tracer` to a machine
and every committed instruction is recorded as ``<PC:DISEPC>`` plus its
disassembly — the exact pair the paper uses to describe replacement-
sequence execution ("instructions are associated with a <PC:DISEPC>
pair, where PC is the PC of the trigger and DISEPC is the index of the
replacement instruction within its sequence (0 for unexpanded
instructions)").

The trace is a bounded ring buffer so it can stay attached to long
runs; filters restrict recording to DISE-inserted instructions or to a
PC window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.cpu.machine import Machine
from repro.isa.instruction import Instruction


@dataclass(frozen=True)
class TraceRecord:
    """One committed instruction."""

    sequence: int  # commit order
    pc: int
    disepc: int
    text: str
    is_dise: bool

    def render(self) -> str:
        """One formatted trace line."""
        origin = "D" if self.is_dise else " "
        return (f"{self.sequence:8d}  <{self.pc:#08x}:{self.disepc}> "
                f"{origin} {self.text}")


class Tracer:
    """Records the machine's committed instruction stream."""

    def __init__(self, machine: Machine, capacity: int = 4096,
                 dise_only: bool = False,
                 pc_range: Optional[tuple[int, int]] = None):
        self.machine = machine
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self.dise_only = dise_only
        self.pc_range = pc_range
        self.committed = 0
        self._attached = False

    # -- attachment ----------------------------------------------------------

    def attach(self) -> "Tracer":
        """Install this tracer as the machine's instruction observer."""
        if self.machine.instruction_observer is not None:
            raise RuntimeError("machine already has an instruction observer")
        self.machine.instruction_observer = self._observe
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove this tracer from the machine."""
        if self._attached:
            self.machine.instruction_observer = None
            self._attached = False

    def __enter__(self) -> "Tracer":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- recording --------------------------------------------------------------

    def _observe(self, pc: int, disepc: int, inst: Instruction,
                 is_dise: bool) -> None:
        self.committed += 1
        if self.dise_only and not is_dise:
            return
        if self.pc_range is not None:
            lo, hi = self.pc_range
            if not lo <= pc < hi:
                return
        self.records.append(TraceRecord(self.committed, pc, disepc,
                                        inst.disassemble(), is_dise))

    # -- presentation ---------------------------------------------------------------

    def render(self, last: Optional[int] = None) -> str:
        """Render the recorded stream (optionally only the last N lines)."""
        records = list(self.records)
        if last is not None:
            records = records[-last:]
        return "\n".join(record.render() for record in records)

    def expansions(self) -> list[list[TraceRecord]]:
        """Group DISE records into their replacement sequences."""
        groups: list[list[TraceRecord]] = []
        current: list[TraceRecord] = []
        for record in self.records:
            if not record.is_dise:
                if current:
                    groups.append(current)
                    current = []
                continue
            if record.disepc == 0 and current:
                groups.append(current)
                current = []
            current.append(record)
        if current:
            groups.append(current)
        return groups

    def __len__(self) -> int:
        return len(self.records)
