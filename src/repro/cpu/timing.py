"""The single-pass timing model.

Consumes the in-order committed instruction stream from the machine and
produces a cycle count.  Charged effects, all configurable through
:class:`repro.config.MachineConfig`:

* **Bandwidth** — at most ``commit_width`` instructions per cycle, at
  most ``load_ports`` loads and ``store_ports`` stores per cycle.  This
  is what makes DISE-inserted instructions cost "the bandwidth cost of
  the added instructions" and what exposes the load-port contention that
  motivates the paper's Optimization II (address-match gating).
* **Memory latency** — loads probe DTLB + D$/L2; miss latency is charged
  scaled by an overlap factor standing in for out-of-order latency
  hiding.  Stores update cache state but retire through the store buffer
  without stalling commit.
* **Fetch** — each *fetched* line probes ITLB + I$; DISE-inserted
  instructions are not fetched and skip this entirely, while the binary
  rewriting backend's inserted instructions pay it — the contrast shown
  in Figure 5.
* **Flushes** — branch mispredictions, taken DISE branches, DISE
  call/return, and trap delivery flush the pipeline
  (``pipeline_depth`` cycles of refill).
* **Debugger transitions** — spurious transitions flush and stall
  100,000 cycles (paper methodology); user transitions are free.
* **Multithreaded DISE calls** — in MT mode (Figure 8) the call/return
  flushes are suppressed and the function body's instructions retire on
  a spare thread context, consuming no main-thread commit slots.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.cpu.predictor import BranchPredictor
from repro.memory.cache import AccessLevel, CacheHierarchy
from repro.memory.tlb import Tlb

_LINE_SHIFT = 6  # 64-byte lines


class TimingModel:
    """Accumulates cycles for an in-order committed instruction stream."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.caches = CacheHierarchy(config)
        self.itlb = Tlb(config.itlb, "itlb")
        self.dtlb = Tlb(config.dtlb, "dtlb")
        self.predictor = BranchPredictor(config.branch_predictor_entries,
                                         config.btb_entries)
        pipe = config.pipeline
        mem = config.mem_timing
        self._width = pipe.commit_width
        self._load_ports = pipe.load_ports
        self._store_ports = pipe.store_ports
        self._flush_penalty = pipe.flush_penalty
        # Pre-computed stall charges (cycles) per access level.
        self._load_stall = {
            AccessLevel.L1: 0.0,
            AccessLevel.L2: (mem.l2_hit - mem.l1_hit) * (1.0 - pipe.l2_hit_overlap),
            AccessLevel.MEMORY: mem.memory * (1.0 - pipe.memory_overlap),
        }
        # Front-end miss charges: fetch stalls are mostly exposed.
        self._fetch_stall = {
            AccessLevel.L1: 0.0,
            AccessLevel.L2: (mem.l2_hit - 1) * 0.8,
            AccessLevel.MEMORY: mem.memory * 0.8,
        }
        self._itlb_penalty = config.itlb.miss_penalty
        self._dtlb_penalty = config.dtlb.miss_penalty
        self._spurious_cost = config.debug_costs.spurious_transition_cycles
        self._user_cost = config.debug_costs.user_transition_cycles
        self.multithreaded = config.multithreaded_dise_calls

        self.cycles = 0.0
        self._slots = 0
        self._loads_this_cycle = 0
        self._stores_this_cycle = 0
        # Off-thread mode: instructions retire on a spare thread context.
        self.offthread = False

        self.flushes = 0
        self.fetch_lines = 0
        self._last_fetch_line = -1
        self._last_fetch_page = -1
        self._last_data_page = -1

        # commit() runs once per retired instruction; single-threaded
        # configurations never enter off-thread mode, so bind the
        # variant without that test.
        if not self.multithreaded:
            self.commit = self._commit_singlethreaded

    # -- cycle bookkeeping -------------------------------------------------

    def _next_cycle(self) -> None:
        self.cycles += 1.0
        self._slots = 0
        self._loads_this_cycle = 0
        self._stores_this_cycle = 0

    def _stall(self, cycles: float) -> None:
        if cycles:
            self.cycles += cycles
            self._slots = 0
            self._loads_this_cycle = 0
            self._stores_this_cycle = 0

    # -- per-instruction events ----------------------------------------------

    def commit(self) -> None:
        """One instruction retires, consuming a commit slot."""
        if self.offthread and self.multithreaded:
            return
        self._slots += 1
        if self._slots >= self._width:
            self._next_cycle()

    def _commit_singlethreaded(self) -> None:
        """commit() with the off-thread test and the _next_cycle call
        folded away (bound over ``commit`` when not multithreaded)."""
        self._slots += 1
        if self._slots >= self._width:
            self.cycles += 1.0
            self._slots = 0
            self._loads_this_cycle = 0
            self._stores_this_cycle = 0

    def fetch(self, pc: int) -> None:
        """A conventional instruction is fetched at ``pc``.

        Charges I$/ITLB behaviour once per line/page transition; DISE-
        inserted instructions must not be passed here.
        """
        line = pc >> _LINE_SHIFT
        if line == self._last_fetch_line:
            return
        self._last_fetch_line = line
        self.fetch_lines += 1
        page = pc >> 12
        if page != self._last_fetch_page:
            self._last_fetch_page = page
            if not self.itlb.access(pc):
                self._stall(self._itlb_penalty)
        level = self.caches.access_inst(pc)
        stall = self._fetch_stall[level]
        if stall:
            self._stall(stall)

    def redirect_fetch(self) -> None:
        """Fetch restarts at a new PC (taken branch/flush): the next
        fetched line always re-probes."""
        self._last_fetch_line = -1

    def load(self, addr: int) -> None:
        """A load executes: port, DTLB, and D$ hierarchy charges."""
        if self._loads_this_cycle >= self._load_ports:
            self._next_cycle()
        self._loads_this_cycle += 1
        page = addr >> 12
        if page != self._last_data_page:
            self._last_data_page = page
            if not self.dtlb.access(addr):
                self._stall(self._dtlb_penalty)
        level = self.caches.access_data(addr)
        stall = self._load_stall[level]
        if stall:
            self._stall(stall)

    def store(self, addr: int) -> None:
        """A store executes: port and cache-state charges (no stall)."""
        if self._stores_this_cycle >= self._store_ports:
            self._next_cycle()
        self._stores_this_cycle += 1
        page = addr >> 12
        if page != self._last_data_page:
            self._last_data_page = page
            if not self.dtlb.access(addr):
                self._stall(self._dtlb_penalty)
        self.caches.access_data(addr)

    # -- control events ----------------------------------------------------------

    def conditional_branch(self, pc: int, taken: bool) -> None:
        """Predict/train a conditional branch; flush on misprediction."""
        correct = self.predictor.predict_and_update(pc, taken)
        if not correct:
            self.flush()
        elif taken:
            self.redirect_fetch()

    def call(self, pc: int, return_pc: int) -> None:
        """Direct call: target known at decode; push RAS."""
        self.predictor.push_return(return_pc)
        self.redirect_fetch()

    def return_(self, pc: int, target: int) -> None:
        """A function return: RAS prediction; flush on mismatch."""
        if not self.predictor.predict_return(target):
            self.flush()
        else:
            self.redirect_fetch()

    def indirect_jump(self, pc: int, target: int) -> None:
        """An indirect jump: BTB prediction; flush on mismatch."""
        if not self.predictor.predict_indirect(pc, target):
            self.flush()
        else:
            self.redirect_fetch()

    def direct_jump(self) -> None:
        """An unconditional direct jump: fetch redirect only."""
        self.redirect_fetch()

    def dise_branch_taken(self) -> None:
        """A taken DISE branch: implemented via misprediction recovery."""
        self.flush()

    def dise_call(self) -> bool:
        """Entering a DISE-called function.  Returns True if the flush
        was suppressed by the multithreading optimization."""
        if self.multithreaded:
            self.offthread = True
            return True
        self.flush()
        return False

    def dise_return(self) -> None:
        """Leaving a DISE-called function (flushes unless multithreaded)."""
        if self.multithreaded:
            self.offthread = False
            return
        self.flush()

    def flush(self) -> None:
        """Flush the pipeline: charge the refill penalty."""
        self.flushes += 1
        self._stall(self._flush_penalty)
        self.redirect_fetch()

    def context_switch(self) -> None:
        """Charge a process switch: pipeline flush plus TLB shootdown.

        The address space changes, so both TLBs drop their translations
        (the incoming process re-misses its working set — those misses
        are real and stay counted).  Caches and the branch predictor are
        physically tagged/untagged state shared across processes and are
        left warm, as on a real core.  The fetch/data page trackers
        reset so the first access after the switch re-probes.
        """
        self.flush()
        self.itlb.flush()
        self.dtlb.flush()
        self._last_fetch_page = -1
        self._last_data_page = -1

    # -- debugger costs --------------------------------------------------------

    def debugger_transition(self, spurious: bool) -> None:
        """Charge a debugger transition (spurious: flush + 100K cycles)."""
        if spurious:
            self.flush()
            self._stall(self._spurious_cost)
        elif self._user_cost:
            self._stall(self._user_cost)

    def reset_counters(self) -> None:
        """Zero the cycle count and event counters after a warm-up run.

        Cache, TLB, and predictor *state* is preserved — only counters
        restart, so post-warm-up measurements see steady-state miss
        rates (the paper simulates functions mid-execution with warm
        microarchitectural state).
        """
        self.cycles = 0.0
        self._slots = 0
        self._loads_this_cycle = 0
        self._stores_this_cycle = 0
        self.flushes = 0
        self.fetch_lines = 0
        self.caches.reset_counters()
        self.itlb.reset_counters()
        self.dtlb.reset_counters()
        self.predictor.reset_counters()

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture cycle/port state plus all microarchitectural state.

        The blob holds mutable state only; configuration (and the
        ``commit`` binding chosen at construction) is untouched by
        :meth:`restore`.
        """
        return (self.cycles, self._slots, self._loads_this_cycle,
                self._stores_this_cycle, self.offthread, self.flushes,
                self.fetch_lines, self._last_fetch_line,
                self._last_fetch_page, self._last_data_page,
                self.caches.snapshot(), self.itlb.snapshot(),
                self.dtlb.snapshot(), self.predictor.snapshot())

    def restore(self, blob: tuple) -> None:
        """Reset the timing model to a previous :meth:`snapshot`."""
        (self.cycles, self._slots, self._loads_this_cycle,
         self._stores_this_cycle, self.offthread, self.flushes,
         self.fetch_lines, self._last_fetch_line,
         self._last_fetch_page, self._last_data_page,
         caches, itlb, dtlb, predictor) = blob
        self.caches.restore(caches)
        self.itlb.restore(itlb)
        self.dtlb.restore(dtlb)
        self.predictor.restore(predictor)

    # -- results -----------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        # Account for a partially filled final cycle.
        return int(self.cycles) + (1 if self._slots else 0)
