"""The compiled execution tier: basic blocks fused into Python closures.

The dispatch-table interpreter pays per-instruction overhead that has
nothing to do with the instruction itself: the run-limit and stop
checks, the expansion-state test, the fetch bounds check, the DISE
candidate probes, the observer test, and the handler dispatch.  This
tier hoists all of it out of the instruction stream, in the style of a
dynamic binary translator: decoded basic blocks are compiled — once —
into specialized Python functions ("superinstructions") that execute
the whole block with plain local-variable arithmetic, and a chain loop
runs block to block through a block cache keyed on the entry PC.

Division of labor (the fast path pays for nothing it does not use):

* Every per-run condition that would change per-instruction semantics —
  an active expansion, a DISE-called function, breakpoint registers,
  single-stepping, an instruction observer — routes execution to
  :meth:`CompiledTier._step`, which runs the *table* interpreter for
  exactly one application instruction.  The compiled tier therefore
  never re-implements trap delivery, expansion control flow, or stop
  semantics; it inherits them, bit for bit.
* Every per-PC condition — a DISE production candidate, an
  instrumentation PC, a non-``fast_regs`` operand, a trap/halt/codeword
  instruction, a store while stores are observable (page protections,
  hardware watchpoints, a store observer) — ends the block at that
  instruction, which then executes through :meth:`_step` as well (the
  block cache remembers pure-boundary PCs as ``_FALLBACK``).
* Everything else — the overwhelming steady state of an undebugged or
  DISE-debugged run — executes inside generated code.

Invalidation: compiled blocks are specialized against a captured
environment — the machine's ``text_version`` (bumped by ``reload_text``,
``patch_text``, and self-modifying stores into text), the DISE engine's
effective production list (compared by identity and order, which covers
install/remove/clear, controller install/activate/deactivate, *and*
per-process gating at context switches — a process whose production set
is unchanged when it is scheduled back in keeps its compiled blocks)
and ``enabled`` flag, the
identity of ``instrumentation_pcs``, and the store-observability
predicates.  :meth:`CompiledTier._stale` compares the capture against
live state before every chain entry and flushes the whole cache on any
mismatch; additionally the chain loop re-checks ``text_version`` after
every block so a self-modifying store takes effect at the very next
block boundary, and :meth:`repro.cpu.machine.Machine.restore` flushes
unconditionally so a snapshot taken under different code can never
resurrect stale blocks.

Timing runs compile the timing-model calls (fetch/commit/load/store/
branch events) directly into the block, in table-interpreter order, so
cycle counts are identical; functional runs compile none of them.
"""

from __future__ import annotations

from repro.cpu.functional import MASK64, SIGN_BIT
from repro.memory.main_memory import PAGE_BYTES
from repro.isa.instruction import (H_ALU_IMM, H_ALU_LDA, H_ALU_MOV, H_ALU_REG,
                                   H_BRANCH, H_JUMP_BR, H_JUMP_JMP, H_JUMP_JSR,
                                   H_JUMP_RET, H_LOAD, H_NOP, H_STORE)
from repro.isa.opcodes import Opcode

# Cache entry marking a PC whose instruction must run on the table
# interpreter (DISE candidate, trap, non-fast operands, ...).
_FALLBACK = object()


def _DISCARD(line):
    """Sink for lines gathered past a tile cut (see ``_compile``)."""

# Superblock growth bound: BR splicing and branch fallthrough keep
# extending a block; cap it so compile time and limit-guard slack
# (blocks only run when the *full* path fits under the run limit)
# stay small.  Functional mode affords a much larger cap — blocks
# carry no per-instruction timing calls, and if-conversion means a
# whole multi-thousand-instruction loop body can fuse into one
# (heavily amortized) block — while the timed tier keeps blocks small
# so near-limit runs degrade into fewer single-stepped instructions.
MAX_BLOCK = 320
MAX_BLOCK_FUNCTIONAL = 8192

# Hot-entry threshold: an entry PC is compiled on its Nth chain-loop
# visit.  Until then execution proceeds in COLD_CHUNK-application-
# instruction bursts of the table interpreter, so code that never gets
# hot (cold paths of a large text footprint) never pays ``compile()``
# cost — on large workloads first-visit compilation spends more time
# compiling trickling-in cold entries than it saves executing them.
# The default threshold (``MachineConfig.compiled_hot_threshold``) is
# high enough that the arbitrary chunk-boundary PCs minted while
# re-joining known blocks after a run-limit stop (up to a full lap of
# a big loop per resume) rarely accumulate enough visits to compile a
# redundant overlapping block.
COLD_CHUNK = 8

# If-conversion bound: a forward conditional branch skipping at most
# this many simple instructions is compiled as an inverted ``if``
# around the skipped region instead of a block exit.  Periodic-event
# "skip" branches (taken on almost every iteration) would otherwise
# exit a fused loop every time through.
IF_MAX = 16

_PAGE_MASK = PAGE_BYTES - 1
_PAGE_SHIFT = PAGE_BYTES.bit_length() - 1

_INLINE_ALU = frozenset({
    Opcode.ADDQ, Opcode.SUBQ, Opcode.MULQ, Opcode.AND, Opcode.BIS,
    Opcode.XOR, Opcode.BIC, Opcode.SLL, Opcode.SRL, Opcode.CMPEQ,
    Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPULT, Opcode.CMPULE,
})


def _alu_expr(op: Opcode, a: str, b: str, bval) -> str | None:
    """Inline expression for ``a OP b`` (unsigned-64 domain), or None.

    ``bval`` is the immediate operand's value (pre-masked, as the table
    handler passes it) when the second operand is a literal, letting
    signed compares / BIC / shifts fold their operand transform into
    the constant.  Signed comparisons use the bias trick:
    ``signed(a) < signed(b)  <=>  (a ^ SB) < (b ^ SB)`` unsigned.
    """
    if op is Opcode.ADDQ:
        return f"({a} + {b}) & M"
    if op is Opcode.SUBQ:
        return f"({a} - {b}) & M"
    if op is Opcode.MULQ:
        return f"({a} * {b}) & M"
    if op is Opcode.AND:
        return f"{a} & {b}"
    if op is Opcode.BIS:
        return f"{a} | {b}"
    if op is Opcode.XOR:
        return f"{a} ^ {b}"
    if op is Opcode.BIC:
        if bval is not None:
            return f"{a} & {(~bval) & MASK64}"
        return f"{a} & ~{b} & M"
    if op is Opcode.SLL:
        if bval is not None:
            return f"({a} << {bval & 63}) & M"
        return f"({a} << ({b} & 63)) & M"
    if op is Opcode.SRL:
        if bval is not None:
            return f"({a} >> {bval & 63}) & M"
        return f"({a} >> ({b} & 63)) & M"
    if op is Opcode.CMPEQ:
        return f"1 if {a} == {b} else 0"
    if op is Opcode.CMPULT:
        return f"1 if {a} < {b} else 0"
    if op is Opcode.CMPULE:
        return f"1 if {a} <= {b} else 0"
    if op is Opcode.CMPLT:
        if bval is not None:
            return f"1 if ({a} ^ SB) < {bval ^ SIGN_BIT} else 0"
        return f"1 if ({a} ^ SB) < ({b} ^ SB) else 0"
    if op is Opcode.CMPLE:
        if bval is not None:
            return f"1 if ({a} ^ SB) <= {bval ^ SIGN_BIT} else 0"
        return f"1 if ({a} ^ SB) <= ({b} ^ SB) else 0"
    return None  # SRA (needs arithmetic shift) and future opcodes


def _branch_cond(op: Opcode, v: str) -> str | None:
    """Branch condition on register value ``v`` (unsigned-64 domain)."""
    if op is Opcode.BEQ:
        return f"{v} == 0"
    if op is Opcode.BNE:
        return f"{v} != 0"
    if op is Opcode.BLT:  # signed < 0: sign bit set
        return f"{v} >= SB"
    if op is Opcode.BGE:
        return f"{v} < SB"
    if op is Opcode.BLE:
        return f"{v} == 0 or {v} >= SB"
    if op is Opcode.BGT:
        return f"0 < {v} < SB"
    return None


def _branch_cond_neg(op: Opcode, v: str) -> str | None:
    """The *negation* of :func:`_branch_cond`, as a direct expression.

    If-converted guards test the fall-through direction; emitting the
    inverse comparison saves a ``not`` on the hot path."""
    if op is Opcode.BEQ:
        return f"{v} != 0"
    if op is Opcode.BNE:
        return f"{v} == 0"
    if op is Opcode.BLT:
        return f"{v} < SB"
    if op is Opcode.BGE:
        return f"{v} >= SB"
    if op is Opcode.BLE:
        return f"0 < {v} < SB"
    if op is Opcode.BGT:
        return f"{v} == 0 or {v} >= SB"
    return None


class CompiledTier:
    """Block compiler + chain-dispatch loop for one machine."""

    def __init__(self, machine):
        self.m = machine
        self._timed = machine.timing is not None
        self._hot_threshold = machine.config.compiled_hot_threshold
        # entry pc -> (block function, max app instructions) | _FALLBACK
        self.blocks: dict = {}
        # entry pc -> chain-loop visit count (hot-threshold warmup).
        # Survives flush(): hotness is a property of the program's
        # control flow, not of the current code version, so previously
        # hot entries recompile on first visit after an invalidation.
        self._warm: dict = {}
        # Captured environment the cached blocks were specialized
        # against; None text_version means "never captured".
        self._text_version = None
        self._engine_prods = None
        self._engine_enabled = None
        self._ips = None
        self._any_protected = None
        self._hw_watch = None
        self._has_store_observer = None

    # -- cache validity ----------------------------------------------------

    def flush(self) -> None:
        """Drop every compiled block (restore, external invalidation)."""
        self.blocks.clear()
        self._text_version = None

    def _stale(self) -> bool:
        """Does the live machine environment differ from the capture?"""
        m = self.m
        engine = m.dise_engine
        return (self._text_version != m.text_version
                or self._engine_prods != engine._productions
                or self._engine_enabled != engine.enabled
                or self._ips is not m.instrumentation_pcs
                or self._any_protected != m.pagetable.any_protected
                or self._hw_watch != bool(m.hw_watch_ranges)
                or self._has_store_observer != (m.store_observer is not None))

    def _capture(self) -> None:
        self.blocks.clear()
        m = self.m
        engine = m.dise_engine
        self._text_version = m.text_version
        self._engine_prods = list(engine._productions)
        self._engine_enabled = engine.enabled
        self._ips = m.instrumentation_pcs
        self._any_protected = m.pagetable.any_protected
        self._hw_watch = bool(m.hw_watch_ranges)
        self._has_store_observer = m.store_observer is not None

    # -- execution ---------------------------------------------------------

    def _step(self) -> None:
        """Run the table interpreter for one application instruction.

        The limit is expressed in the table loop's own terms (run until
        ``app_instructions`` reaches current + 1), so expansions, DISE
        functions, free nops, and traps behave exactly as they do there
        — including a stop or halt before the commit.
        """
        m = self.m
        target = m.stats.app_instructions + 1
        if self._timed:
            m._run_table_timed(target)
        else:
            m._run_table_functional(target)

    def run(self, limit: int) -> None:
        """The compiled tier's top-level loop (mirrors _run_table_*)."""
        m = self.m
        step = self._step
        while not m.halted:
            if m.stopped_at_user:
                break
            stats = m.stats
            if 0 <= limit <= stats.app_instructions:
                break
            if self._text_version is None or self._stale():
                self._capture()
            if (m._expansion is not None or m._in_dise_function
                    or m.breakpoint_registers or m.single_step
                    or m.instruction_observer is not None):
                step()
                continue
            blocks = self.blocks
            get = blocks.get
            warm = self._warm
            regs = m.regs
            memory = m.memory
            t = m.timing
            tv = m.text_version
            pc = m.pc
            # Self-looping blocks iterate inside generated code until
            # the next iteration could overshoot this bound.
            lim = limit if limit >= 0 else (1 << 62)
            while True:
                if 0 <= limit <= stats.app_instructions:
                    m.pc = pc
                    break
                entry = get(pc)
                if entry is None:
                    visits = warm.get(pc, 0) + 1
                    if visits < self._hot_threshold:
                        # Cold entry: burn a chunk on the table
                        # interpreter rather than paying compile()
                        # for code that may never recur.
                        warm[pc] = visits
                        m.pc = pc
                        target = stats.app_instructions + COLD_CHUNK
                        if 0 <= limit < target:
                            target = limit
                        if self._timed:
                            m._run_table_timed(target)
                        else:
                            m._run_table_functional(target)
                        break  # outer loop revalidates stop/halt/stale
                    entry = self._compile(pc)
                    blocks[pc] = entry
                if entry is _FALLBACK:
                    m.pc = pc
                    step()
                    break
                if limit >= 0 and stats.app_instructions + entry[1] > limit:
                    # The full block might overshoot the run limit:
                    # finish the tail on the table interpreter in one
                    # call.  (Stepping through the chain loop instead
                    # would mint warm-counts — and eventually compile
                    # entries — for every chunk boundary of a tail that
                    # executes only once per run() call.)
                    m.pc = pc
                    if self._timed:
                        m._run_table_timed(limit)
                    else:
                        m._run_table_functional(limit)
                    break
                pc = entry[0](m, regs, memory, stats, t, lim)
                if m.text_version != tv:
                    # A self-modifying store ran inside the block:
                    # revalidate (and recompile) before chaining on.
                    m.pc = pc
                    break

    # -- block compilation -------------------------------------------------

    def _compile(self, start_pc: int, loop_mode: bool = False):
        """Translate the basic block entered at ``start_pc``.

        Returns ``(function, max_app_count)`` or ``_FALLBACK``.  The
        generated function has signature ``(m, regs, memory, stats, t,
        lim)`` and returns the next fetch PC.

        Straight-line blocks batch statistics deltas at compile time
        and flush them (with the last-store context) at every exit.

        When gathering meets a conditional branch back to ``start_pc``
        the block is retranslated in *loop mode*: the body is wrapped
        in a real ``while`` loop (the backedge becomes ``continue``, so
        iterations pay no chain-loop dispatch) and statistics are
        batched **across** iterations — a completed iteration has
        compile-time-constant deltas, so exits flush
        ``_n * per_iteration + path`` in one shot.  The loop head
        re-checks the run limit (and, for storing bodies, the text
        version) before every iteration.
        """
        m = self.m
        text = m._text
        base = m._text_base
        n = len(text)
        timed = self._timed
        engine = m.dise_engine
        check_dise = engine.enabled and bool(engine._productions)
        by_pc = engine._by_pc
        by_opclass = engine._by_opclass
        by_codeword = engine._by_codeword
        generic = engine._generic
        ips = m.instrumentation_pcs
        free_nops = m.config.free_nops
        store_ok = (not m.pagetable.any_protected
                    and not m.hw_watch_ranges
                    and m.store_observer is None)
        text_base = m._text_base
        text_end = m._text_end

        max_block = MAX_BLOCK if timed else MAX_BLOCK_FUNCTIONAL

        index = (start_pc - base) >> 2
        if (start_pc & 3) or index < 0 or index >= n:
            return _FALLBACK

        ns = {"M": MASK64, "SB": SIGN_BIT}
        lines: list[str] = []
        emit = lines.append
        app = loads = stores = nops = 0  # stat deltas (see flush/writeback)
        brs = tks = 0  # straight mode: batched (assumed-taken) branches
        br_cum = tk_cum = 0  # loop mode: cumulative path branch counts
        app_total = 0  # app count of the longest path (the limit guard)
        pending_store = None  # mem_size of the unflushed last store
        count = 0
        visited = set()
        needs_read = needs_write = False
        terminated = False  # did the block end in an unconditional return?
        fused = False  # loop mode: backedge rewritten as ``continue``
        it_deltas = None  # loop mode: per-completed-iteration stat deltas
        tile_cut = None  # straight mode: state at the first tiling point
        ret_stack: list[int] = []  # return addresses of spliced calls

        def flush_exit():
            """Straight mode: flush compile-time deltas, then reset."""
            nonlocal app, loads, stores, nops, brs, tks, pending_store
            if app:
                emit(f"    stats.app_instructions += {app}")
            if loads:
                emit(f"    stats.loads += {loads}")
            if stores:
                emit(f"    stats.stores += {stores}")
            if nops:
                emit(f"    stats.nops_elided += {nops}")
            if brs:
                emit(f"    stats.branches += {brs}")
            if tks:
                emit(f"    stats.taken_branches += {tks}")
            if pending_store is not None:
                emit("    m.last_store_addr = _sa")
                emit(f"    m.last_store_size = {pending_store}")
                emit("    m.last_store_value = _sv")
            app = loads = stores = nops = brs = tks = 0
            pending_store = None

        def writeback(indent: int, tk: int):
            """Loop mode: flush ``_n`` iterations plus the current path.

            Iteration deltas are unknown until the backedge is met, so
            they are emitted as ``§X§`` tokens and substituted once
            gathering finishes (exits before the backedge reference
            them too).
            """
            pad = " " * indent
            emit(f"{pad}stats.app_instructions += _n * §IA§ + {app}")
            emit(f"{pad}stats.loads += _n * §IL§ + {loads}")
            emit(f"{pad}stats.stores += _n * §IS§ + {stores}")
            emit(f"{pad}stats.nops_elided += _n * §IN§ + {nops}")
            emit(f"{pad}stats.branches += _n * §IB§ + {br_cum}")
            emit(f"{pad}stats.taken_branches += _n * §IT§ + {tk_cum + tk}")

        def gen_region(lo, hi, depth):
            """Lines for skipped instructions ``[lo, hi)`` (recursive).

            A nested forward branch whose join stays inside the region
            becomes a dynamically-accounted ``if/else`` (the region is
            the rare path, so per-execution stat lines are fine there).
            Mutates nothing on failure: the caller commits ``pcs`` /
            flag effects only once the whole conversion succeeds.

            Returns ``(body, n_insts, n_app, has_load, has_store,
            pcs)`` or None if any instruction cannot be emitted inline.
            """
            body = []
            pcs = []
            r_app = r_loads = r_stores = r_nops = 0
            n_insts = n_app = 0
            has_load = has_store = False
            ri = lo
            while ri < hi:
                rpc = base + (ri << 2)
                rinst = text[ri]
                rdec = rinst.decoded or rinst.decode()
                if rpc in visited or rpc in pcs:
                    return None
                if check_dise and (
                        rpc in by_pc or rdec.opclass in by_opclass
                        or generic
                        or (rinst.opcode is Opcode.CODEWORD
                            and rinst.imm in by_codeword)):
                    return None
                if ips and rpc in ips:
                    return None
                rh = rdec.handler_index
                if rh == H_BRANCH and depth < 4:
                    target = rinst.target
                    if not isinstance(target, int) or target & 3:
                        return None
                    rcond = _branch_cond(rinst.opcode,
                                         f"regs[{rinst.rs1}]")
                    tidx = (target - base) >> 2
                    if rcond is None or not ri < tidx <= hi:
                        return None
                    sub = gen_region(ri + 1, tidx, depth + 1)
                    if sub is None:
                        return None
                    sub_body, s_insts, s_app, s_load, s_store, s_pcs = sub
                    body.append("stats.branches += 1")
                    body.append(f"if {rcond}:")
                    body.append("    stats.taken_branches += 1")
                    if sub_body:
                        body.append("else:")
                        body.extend("    " + line for line in sub_body)
                    pcs.append(rpc)
                    pcs.extend(s_pcs)
                    r_app += 1
                    n_insts += 1 + s_insts
                    n_app += 1 + s_app
                    has_load |= s_load
                    has_store |= s_store
                    ri = tidx
                    continue
                if rh != H_NOP:
                    if rh not in (H_ALU_LDA, H_ALU_MOV, H_ALU_IMM,
                                  H_ALU_REG, H_LOAD, H_STORE) \
                            or not rdec.fast_regs:
                        return None
                    if rh == H_STORE and not store_ok:
                        return None
                if rh == H_NOP:
                    if free_nops:
                        r_nops += 1
                    else:
                        r_app += 1
                        n_app += 1
                elif rh in (H_ALU_LDA, H_ALU_MOV, H_ALU_IMM, H_ALU_REG):
                    a = f"regs[{rinst.rs1}]"
                    if rh == H_ALU_LDA:
                        expr = f"({a} + {rinst.imm}) & M"
                    elif rh == H_ALU_MOV:
                        expr = a
                    else:
                        if rh == H_ALU_IMM:
                            bval = rinst.imm & MASK64
                            b = str(bval)
                        else:
                            bval = None
                            b = f"regs[{rinst.rs2}]"
                        expr = _alu_expr(rinst.opcode, a, b, bval)
                        if expr is None:
                            fn = f"_f{len(ns)}"
                            ns[fn] = rdec.alu_func
                            expr = f"{fn}({a}, {b})"
                    body.append(f"regs[{rinst.rd}] = {expr}")
                    r_app += 1
                    n_app += 1
                elif rh == H_LOAD:
                    size = rdec.mem_size
                    body.append(f"_a = (regs[{rinst.rs1}] + {rinst.imm})"
                                " & M")
                    body.append(f"_p = pg(_a >> {_PAGE_SHIFT})")
                    body.append(f"_o = _a & {_PAGE_MASK}")
                    body.append(f"regs[{rinst.rd}] = ("
                                f"fb(_p[_o:_o + {size}], 'little') "
                                f"if _p is not None "
                                f"and _o <= {PAGE_BYTES - size} "
                                f"else read_int(_a, {size}))")
                    has_load = True
                    r_loads += 1
                    r_app += 1
                    n_app += 1
                else:  # H_STORE — always eager under a guard
                    size = rdec.mem_size
                    body.append(f"_sa = (regs[{rinst.rs1}] + {rinst.imm})"
                                " & M")
                    body.append(f"_sv = regs[{rinst.rd}]")
                    body.append(f"_pn = _sa >> {_PAGE_SHIFT}")
                    body.append(f"_o = _sa & {_PAGE_MASK}")
                    body.append("_p = pg(_pn)")
                    body.append(f"if _p is None or _o > {PAGE_BYTES - size} "
                                "or _pn in frozen:")
                    body.append(f"    write_int(_sa, {size}, _sv)")
                    body.append("else:")
                    masked = "_sv" if size == 8 \
                        else f"(_sv & {(1 << (8 * size)) - 1})"
                    body.append(f"    _p[_o:_o + {size}] = "
                                f"{masked}.to_bytes({size}, 'little')")
                    body.append(f"if _sa < {text_end} "
                                f"and _sa + {size} > {text_base}:")
                    body.append(f"    m._note_text_store(_sa, {size})")
                    body.append("m.last_store_addr = _sa")
                    body.append(f"m.last_store_size = {size}")
                    body.append("m.last_store_value = _sv")
                    has_store = True
                    r_stores += 1
                    r_app += 1
                    n_app += 1
                pcs.append(rpc)
                n_insts += 1
                ri += 1
            if r_app:
                body.append(f"stats.app_instructions += {r_app}")
            if r_loads:
                body.append(f"stats.loads += {r_loads}")
            if r_stores:
                body.append(f"stats.stores += {r_stores}")
            if r_nops:
                body.append(f"stats.nops_elided += {r_nops}")
            return body, n_insts, n_app, has_load, has_store, pcs

        def try_if_convert(tindex, ncond):
            """Forward skip branch: keep the skipped region in-block.

            Emits the region under the *inverted* guard instead of
            exiting on the taken edge — periodic-event skips are taken
            on nearly every iteration, so exiting would unfuse every
            loop whose body contains one.  The branch is assumed taken
            in the batched taken-branch count; the (rare) fallthrough
            path corrects by -1 and bumps its own stat deltas
            dynamically, keeping compile-time batches path-independent.
            Functional mode only: the timed path needs per-instruction
            fetch/commit events in program order.

            Returns the converted instruction count, or None if the
            region cannot be emitted inline (then the caller falls
            back to the exit-on-taken translation).
            """
            nonlocal pending_store, needs_read, needs_write, app_total
            res = gen_region(index + 1, tindex, 1)
            if res is None:
                return None
            body, n_insts, n_app, has_load, has_store, pcs = res
            if pending_store is not None and has_store:
                # The region stores eagerly; materialize the older
                # batched store now so the exit flush cannot clobber
                # the region's (dynamically later) last-store context.
                emit("    m.last_store_addr = _sa")
                emit(f"    m.last_store_size = {pending_store}")
                emit("    m.last_store_value = _sv")
                pending_store = None
            emit(f"    if {ncond}:")
            for line in body:
                emit("        " + line)
            emit("        stats.taken_branches -= 1")
            visited.update(pcs)
            needs_read |= has_load
            needs_write |= has_store
            app_total += n_app
            return n_insts

        while True:
            pc = base + (index << 2)
            if (index < 0 or index >= n or pc in visited
                    or count >= max_block):
                break  # exit with fallthrough to pc
            if count and pc in self.blocks and not loop_mode \
                    and tile_cut is None:
                # Reached an entry that is already compiled: prefer to
                # end here and chain into it rather than re-translating
                # its body (blocks then tile the text instead of
                # overlapping, bounding total compile() cost on large
                # footprints).  But a backedge past this point must
                # still be discoverable — cold-chunk warmup routinely
                # compiles mid-loop entries before the loop head, and
                # cutting here would permanently unfuse the loop.  So
                # record the cut and keep scanning; translation rolls
                # back to it only if no backedge turns up.  Loop mode
                # ignores tiling outright: fusion outweighs overlap.
                tile_cut = (len(lines), app, loads, stores, nops, brs, tks,
                            app_total, pending_store, count, index,
                            len(ret_stack))
                # Everything gathered past the cut is discarded either
                # way — rollback drops it, and a discovered backedge
                # restarts translation in loop mode — so the scan-ahead
                # runs dry: no line formatting, just decode and
                # suitability checks (``emit`` is a shared cell, so the
                # flush/writeback/if-convert helpers go quiet too).
                emit = _DISCARD
            inst = text[index]
            d = inst.decoded
            if d is None:
                d = inst.decode()
            # A DISE production candidate or instrumentation PC changes
            # fetch/accounting semantics: end the block before it.
            if check_dise and (
                    pc in by_pc or d.opclass in by_opclass or generic
                    or (inst.opcode is Opcode.CODEWORD
                        and inst.imm in by_codeword)):
                break
            if ips and pc in ips:
                break
            h = d.handler_index

            if h == H_NOP:
                if free_nops:
                    if timed:
                        emit(f"    t.fetch({pc})")
                    nops += 1
                else:
                    if timed:
                        emit(f"    t.fetch({pc})")
                        emit("    t.commit()")
                    app += 1
                    app_total += 1
                visited.add(pc)
                count += 1
                index += 1
                continue

            if h in (H_ALU_LDA, H_ALU_MOV, H_ALU_IMM, H_ALU_REG, H_LOAD,
                     H_STORE, H_BRANCH, H_JUMP_JSR, H_JUMP_RET, H_JUMP_JMP):
                if not d.fast_regs:
                    break  # zero/DISE-register operands: table path

            if h == H_STORE and not store_ok:
                break

            if h == H_BRANCH:
                target = inst.target
                if not isinstance(target, int) or target & 3:
                    break
                cond = _branch_cond(inst.opcode, f"regs[{inst.rs1}]")
                if cond is None:
                    break
                if target == start_pc and not loop_mode:
                    # A backedge to our own entry: retranslate the
                    # whole block in loop mode (the gather path is
                    # deterministic, so the second pass meets the same
                    # backedge and fuses it).
                    return self._compile(start_pc, loop_mode=True)
                if timed:
                    emit(f"    t.fetch({pc})")
                    emit("    t.commit()")
                app += 1
                app_total += 1
                if not timed:
                    tindex = (target - base) >> 2
                    span = tindex - index - 1
                    ncond = _branch_cond_neg(inst.opcode,
                                             f"regs[{inst.rs1}]")
                    if (0 <= span <= IF_MAX and tindex <= n
                            and ncond is not None
                            and count + 1 + span <= max_block):
                        done = try_if_convert(tindex, ncond)
                        if done is not None:
                            if loop_mode:
                                br_cum += 1
                                tk_cum += 1
                            else:
                                brs += 1
                                tks += 1
                            visited.add(pc)
                            count += 1 + done
                            index = tindex
                            continue
                if loop_mode:
                    br_cum += 1
                    if timed:
                        emit(f"    _c = {cond}")
                        emit(f"    t.conditional_branch({pc}, _c)")
                        emit("    if _c:")
                    else:
                        emit(f"    if {cond}:")
                    if target == start_pc and not fused:
                        fused = True
                        it_deltas = (app, loads, stores, nops, br_cum,
                                     tk_cum + 1)
                        emit("        _n += 1")
                        emit("        continue")
                    else:
                        writeback(8, tk=1)
                        emit(f"        return {target}")
                else:
                    flush_exit()
                    emit("    stats.branches += 1")
                    if timed:
                        emit(f"    _c = {cond}")
                        emit(f"    t.conditional_branch({pc}, _c)")
                        emit("    if _c:")
                    else:
                        emit(f"    if {cond}:")
                    emit("        stats.taken_branches += 1")
                    emit(f"        return {target}")
                visited.add(pc)
                count += 1
                index += 1
                continue

            if h == H_JUMP_BR:
                target = inst.target
                if not isinstance(target, int) or target & 3:
                    break
                if timed:
                    emit(f"    t.fetch({pc})")
                    emit("    t.commit()")
                    emit("    t.direct_jump()")
                app += 1
                app_total += 1
                visited.add(pc)
                count += 1
                index = (target - base) >> 2  # superblock: splice target
                continue

            if h == H_JUMP_JSR:
                target = inst.target
                if not isinstance(target, int):
                    break
                if timed:
                    emit(f"    t.fetch({pc})")
                    emit("    t.commit()")
                app += 1
                app_total += 1
                emit(f"    regs[{inst.rd}] = {pc + 4}")
                if timed:
                    emit(f"    t.call({pc}, {pc + 4})")
                if (target & 3) == 0 and 0 <= (target - base) >> 2 < n:
                    # Splice the callee like an unconditional jump,
                    # remembering the return address: the matching RET
                    # deopt-guards on it (call-return inlining), which
                    # is what lets loops whose bodies make calls fuse.
                    ret_stack.append(pc + 4)
                    visited.add(pc)
                    count += 1
                    index = (target - base) >> 2
                    continue
                if loop_mode:
                    writeback(4, tk=0)
                else:
                    flush_exit()
                emit(f"    return {target}")
                visited.add(pc)
                count += 1
                terminated = True
                break

            if h in (H_JUMP_RET, H_JUMP_JMP):
                if timed:
                    emit(f"    t.fetch({pc})")
                    emit("    t.commit()")
                app += 1
                app_total += 1
                emit(f"    _t = regs[{inst.rs1}]")
                if timed:
                    if h == H_JUMP_RET:
                        emit(f"    t.return_({pc}, _t)")
                    else:
                        emit(f"    t.indirect_jump({pc}, _t)")
                if h == H_JUMP_RET and ret_stack:
                    # Return matching a spliced call: keep translating
                    # at the recorded return address behind a deopt
                    # guard — if the return register was retargeted at
                    # run time, exit to wherever it actually points.
                    expected = ret_stack.pop()
                    if loop_mode:
                        emit(f"    if _t != {expected}:")
                        writeback(8, tk=0)
                        emit("        return _t")
                    else:
                        # Flush unconditionally (as conditional
                        # branches do), so the guard exit is bare.
                        flush_exit()
                        emit(f"    if _t != {expected}:")
                        emit("        return _t")
                    visited.add(pc)
                    count += 1
                    index = (expected - base) >> 2
                    continue
                if loop_mode:
                    writeback(4, tk=0)
                else:
                    flush_exit()
                emit("    return _t")
                visited.add(pc)
                count += 1
                terminated = True
                break

            if h in (H_ALU_LDA, H_ALU_MOV, H_ALU_IMM, H_ALU_REG):
                if timed:
                    emit(f"    t.fetch({pc})")
                    emit("    t.commit()")
                a = f"regs[{inst.rs1}]"
                if h == H_ALU_LDA:
                    expr = f"({a} + {inst.imm}) & M"
                elif h == H_ALU_MOV:
                    expr = a
                else:
                    if h == H_ALU_IMM:
                        bval = inst.imm & MASK64
                        b = str(bval)
                    else:
                        bval = None
                        b = f"regs[{inst.rs2}]"
                    expr = _alu_expr(inst.opcode, a, b, bval)
                    if expr is None:
                        fn = f"_f{len(ns)}"
                        ns[fn] = d.alu_func
                        expr = f"{fn}({a}, {b})"
                emit(f"    regs[{inst.rd}] = {expr}")
                app += 1
                app_total += 1
                visited.add(pc)
                count += 1
                index += 1
                continue

            if h == H_LOAD:
                size = d.mem_size
                if timed:
                    emit(f"    t.fetch({pc})")
                    emit("    t.commit()")
                emit(f"    _a = (regs[{inst.rs1}] + {inst.imm}) & M")
                # Inlined MainMemory.read_int fast path: resident page,
                # access within it.  Falls back for missing pages and
                # page-crossing accesses.
                emit(f"    _p = pg(_a >> {_PAGE_SHIFT})")
                emit(f"    _o = _a & {_PAGE_MASK}")
                emit(f"    regs[{inst.rd}] = ("
                     f"fb(_p[_o:_o + {size}], 'little') "
                     f"if _p is not None and _o <= {PAGE_BYTES - size} "
                     f"else read_int(_a, {size}))")
                if timed:
                    emit("    t.load(_a)")
                needs_read = True
                loads += 1
                app += 1
                app_total += 1
                visited.add(pc)
                count += 1
                index += 1
                continue

            if h == H_STORE:
                size = d.mem_size
                if timed:
                    emit(f"    t.fetch({pc})")
                    emit("    t.commit()")
                emit(f"    _sa = (regs[{inst.rs1}] + {inst.imm}) & M")
                emit(f"    _sv = regs[{inst.rd}]")
                if timed:
                    emit("    t.store(_sa)")
                # Inlined MainMemory.write_int fast path: resident,
                # unfrozen page, access within it.  Frozen pages (live
                # snapshots) take the copy-on-write slow path.
                emit(f"    _pn = _sa >> {_PAGE_SHIFT}")
                emit(f"    _o = _sa & {_PAGE_MASK}")
                emit("    _p = pg(_pn)")
                emit(f"    if _p is None or _o > {PAGE_BYTES - size} "
                     "or _pn in frozen:")
                emit(f"        write_int(_sa, {size}, _sv)")
                emit("    else:")
                masked = "_sv" if size == 8 \
                    else f"(_sv & {(1 << (8 * size)) - 1})"
                emit(f"        _p[_o:_o + {size}] = "
                     f"{masked}.to_bytes({size}, 'little')")
                emit(f"    if _sa < {text_end} and _sa + {size} > {text_base}:")
                emit(f"        m._note_text_store(_sa, {size})")
                if loop_mode:
                    # Paths through the wrapped loop are not all
                    # store-dominated, so the last-store context cannot
                    # be batched per exit: record it at the store, as
                    # the table interpreter does.
                    emit("    m.last_store_addr = _sa")
                    emit(f"    m.last_store_size = {size}")
                    emit("    m.last_store_value = _sv")
                else:
                    pending_store = size
                needs_write = True
                stores += 1
                app += 1
                app_total += 1
                visited.add(pc)
                count += 1
                index += 1
                continue

            # TRAP/CTRAP/HALT/CODEWORD/DISE ops, or anything unexpected:
            # boundary — the table interpreter executes it.
            break

        if tile_cut is not None:
            # No backedge justified gathering past the already-compiled
            # entry (a backedge recurses into loop mode above): roll
            # back to the tiling point and chain into that entry.
            (cut, app, loads, stores, nops, brs, tks, app_total,
             pending_store, count, index, rets) = tile_cut
            del lines[cut:]
            del ret_stack[rets:]  # calls spliced past the cut are gone
            emit = lines.append  # dry scan over: the exit still emits
            terminated = False

        if count == 0:
            return _FALLBACK

        if not terminated:
            # Fell off the end of the gathered region (boundary, block
            # cap, revisit): resume at the current fetch PC.
            if loop_mode:
                writeback(4, tk=0)
            else:
                flush_exit()
            emit(f"    return {base + (index << 2)}")

        preamble = []
        if needs_read or needs_write:
            # memory._pages / _frozen are rebound per call: restore()
            # and snapshot() replace those objects wholesale, and the
            # block must observe the live ones.
            preamble.append("    pg = memory._pages.get")
        if needs_read:
            preamble.append("    read_int = memory.read_int")
            ns["fb"] = int.from_bytes
        if needs_write:
            preamble.append("    write_int = memory.write_int")
            preamble.append("    frozen = memory._frozen")

        if loop_mode:
            assert fused and it_deltas is not None
            ia, il, is_, in_, ib, it_ = it_deltas
            body = []
            for line in lines:
                if "§" in line:
                    for token, value in (("§IA§", ia), ("§IL§", il),
                                         ("§IS§", is_), ("§IN§", in_),
                                         ("§IB§", ib), ("§IT§", it_)):
                        line = line.replace(token, str(value))
                    line = line.replace("_n * 0 + ", "")
                    if line.endswith("+= 0"):
                        continue  # delta is identically zero: drop
                    if line.endswith(" + 0"):
                        line = line[:-4]
                body.append("    " + line)
            # The loop head re-checks the run limit before every
            # iteration (stats stay unflushed inside the loop, so the
            # guard reads the entry count plus the local iteration
            # counter) and, for storing bodies, the text version — a
            # self-modifying store must stop iterating stale code.
            # ``stats.app_instructions`` is read fresh each iteration:
            # if-converted regions bump it dynamically mid-loop, so a
            # value cached at entry would understate progress.
            guard = (f"        if stats.app_instructions + _n * {ia} "
                     f"+ {app_total} > lim")
            if needs_write:
                guard += f" or m.text_version != {m.text_version}"
            head = ["    _n = 0",
                    "    while True:",
                    guard + ":"]
            for stat, delta in (("app_instructions", ia), ("loads", il),
                                ("stores", is_), ("nops_elided", in_),
                                ("branches", ib), ("taken_branches", it_)):
                if delta:
                    head.append(f"            stats.{stat} += _n * {delta}")
            head.append(f"            return {start_pc}")
            lines = head + body

        src = ("def _b(m, regs, memory, stats, t, lim):\n"
               + "\n".join(preamble + lines) + "\n")
        exec(compile(src, f"<block@{start_pc:#x}>", "exec"), ns)
        return (ns["_b"], app_total)
