"""Run statistics.

:class:`SimStats` aggregates everything a run produces: instruction
counts (split by origin: application, DISE-inserted, debugger-generated
function), memory events, pipeline events, and — centrally for this
paper — *debugger transitions* split by kind.

The paper's taxonomy (Section 2): a debugger transition is *spurious*
when it is not masked by a user transition.  Spurious **address**
transitions fire although no watched datum was written; spurious
**value** transitions fire when a watched variable is written but the
watched expression's value is unchanged (e.g. silent stores); spurious
**predicate** transitions fire when a conditional's predicate is false.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum, unique


@unique
class TransitionKind(Enum):
    """Classification of a debugger transition."""

    USER = "user"  # masked by user interaction: modeled as free
    SPURIOUS_ADDRESS = "spurious_address"
    SPURIOUS_VALUE = "spurious_value"
    SPURIOUS_PREDICATE = "spurious_predicate"
    NONE = "none"  # trap handled without a debugger transition


@dataclass
class SimStats:
    """Counters for one simulation run."""

    # Instructions committed, by origin.
    app_instructions: int = 0
    dise_instructions: int = 0  # inserted by replacement sequences
    function_instructions: int = 0  # inside DISE-called functions
    nops_elided: int = 0

    # Memory events.
    loads: int = 0
    stores: int = 0

    # Control events.
    branches: int = 0
    taken_branches: int = 0
    mispredictions: int = 0

    # DISE events.
    dise_expansions: int = 0
    dise_branch_flushes: int = 0
    dise_call_flushes: int = 0

    # Debugger interaction.
    traps: int = 0
    page_fault_traps: int = 0
    transitions: dict[TransitionKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in TransitionKind})

    # Timing summary (filled in from the timing model at run end).
    cycles: int = 0

    @property
    def total_instructions(self) -> int:
        return (self.app_instructions + self.dise_instructions +
                self.function_instructions)

    @property
    def ipc(self) -> float:
        return self.total_instructions / self.cycles if self.cycles else 0.0

    @property
    def store_density(self) -> float:
        """Stores as a fraction of committed application instructions."""
        if not self.app_instructions:
            return 0.0
        return self.stores / self.app_instructions

    @property
    def spurious_transitions(self) -> int:
        t = self.transitions
        return (t[TransitionKind.SPURIOUS_ADDRESS]
                + t[TransitionKind.SPURIOUS_VALUE]
                + t[TransitionKind.SPURIOUS_PREDICATE])

    @property
    def user_transitions(self) -> int:
        return self.transitions[TransitionKind.USER]

    def record_transition(self, kind: TransitionKind) -> None:
        """Count one debugger transition of the given kind."""
        self.transitions[kind] += 1

    def to_dict(self) -> dict:
        """JSON-ready rendering (transition keys become their values)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "transitions"}
        data["transitions"] = {kind.value: count
                               for kind, count in self.transitions.items()}
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Rebuild stats from :meth:`to_dict` output.

        Unknown keys are ignored so that records written by a newer
        code version load (the result cache rejects those earlier via
        its code-version check; this guard is for hand-edited files).
        """
        known = {f.name for f in fields(cls)}
        stats = cls(**{key: value for key, value in data.items()
                       if key in known and key != "transitions"})
        for name, count in (data.get("transitions") or {}).items():
            stats.transitions[TransitionKind(name)] = int(count)
        return stats

    def summary(self) -> str:
        """Multi-line text rendering of the run's counters."""
        lines = [
            f"cycles               {self.cycles:>14,}",
            f"instructions (app)   {self.app_instructions:>14,}",
            f"instructions (DISE)  {self.dise_instructions:>14,}",
            f"instructions (func)  {self.function_instructions:>14,}",
            f"IPC                  {self.ipc:>14.3f}",
            f"loads / stores       {self.loads:,} / {self.stores:,}",
            f"branches (mispred)   {self.branches:,} ({self.mispredictions:,})",
            f"DISE expansions      {self.dise_expansions:,}",
            f"traps                {self.traps:,}",
        ]
        for kind in TransitionKind:
            count = self.transitions[kind]
            if count:
                lines.append(f"transitions[{kind.value}] {count:,}")
        return "\n".join(lines)
