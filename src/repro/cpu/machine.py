"""The simulated machine: fetch, DISE expansion, execute, trap delivery.

:class:`Machine` executes a :class:`~repro.isa.program.Program`
functionally, in program order, while streaming events into a
:class:`~repro.cpu.timing.TimingModel`.  The DISE engine sits between
fetch and execute exactly as in the paper: every *fetched* instruction
is offered to the engine, and a match substitutes the instantiated
replacement sequence, whose elements execute with DISEPC semantics:

* taken DISE branches move only the DISEPC and cost a pipeline flush
  (implemented via the misprediction-recovery path);
* ``d_call``/``d_ccall`` save ``<PC : DISEPC+1>``, flush, and redirect
  fetch to conventional code with DISE expansion disabled;
* ``d_ret`` restores the saved pair, flushes, and re-enables expansion;
* conventional control transfers inside a sequence jump to
  ``<newPC : 0>``, abandoning the rest of the sequence.

The machine also implements the non-DISE debugging substrates the paper
compares against: hardware watchpoint/breakpoint registers (trap on
matching store/fetch), page-protection faults (via the
:class:`~repro.memory.pagetable.PageTable`), and statement-granularity
single-stepping.  All such events are delivered to a single
``trap_handler`` callback — the "debugger process" — which classifies
the transition (:class:`~repro.cpu.stats.TransitionKind`); the timing
model then charges it (spurious: flush + 100,000 cycles; user: free).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Callable, Optional

from repro.config import MachineConfig, DEFAULT_CONFIG
from repro.errors import SimulationError
from repro.cpu.functional import MASK64, alu_result, branch_taken
from repro.cpu.stats import SimStats, TransitionKind
from repro.cpu.timing import TimingModel
from repro.dise.controller import DiseController
from repro.dise.engine import DiseEngine
from repro.dise.registers import DiseRegisterFile
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode, OpClass
from repro.isa.program import (INSTRUCTION_BYTES, Program, STACK_TOP,
                               STACK_BYTES, TEXT_BASE)
from repro.isa.registers import DISE_REG_BASE, SP, ZERO_REG
from repro.memory.main_memory import MainMemory
from repro.memory.pagetable import PageTable


@unique
class TrapKind(Enum):
    """Why control crossed into the debugger."""

    TRAP = "trap"  # explicit trap/ctrap instruction
    HW_WATCHPOINT = "hw_watchpoint"  # hardware watchpoint register match
    BREAKPOINT = "breakpoint"  # breakpoint register match at fetch
    PAGE_FAULT = "page_fault"  # store to a write-protected page
    SINGLE_STEP = "single_step"  # statement-granularity stepping


@dataclass
class TrapEvent:
    """Context delivered to the trap handler."""

    kind: TrapKind
    pc: int
    address: int = 0  # faulting/matching store address (when relevant)
    size: int = 0
    value: int = 0  # value being stored (when relevant)


TrapHandler = Callable[[TrapEvent], TransitionKind]

_SPURIOUS = frozenset({
    TransitionKind.SPURIOUS_ADDRESS,
    TransitionKind.SPURIOUS_VALUE,
    TransitionKind.SPURIOUS_PREDICATE,
})


@dataclass
class RunResult:
    """Outcome of a :meth:`Machine.run` call."""

    stats: SimStats
    halted: bool
    stopped_at_user: bool = False

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def overhead_vs(self, baseline: "RunResult") -> float:
        """Execution time normalized to ``baseline`` (1.0 = no overhead)."""
        if baseline.stats.cycles == 0:
            raise ValueError("baseline has zero cycles")
        return self.stats.cycles / baseline.stats.cycles


class Machine:
    """A single-core machine running one program."""

    def __init__(
        self,
        program: Program,
        config: MachineConfig | None = None,
        trap_handler: Optional[TrapHandler] = None,
        detailed_timing: bool = True,
    ):
        self.config = config or DEFAULT_CONFIG
        self.program = program
        self.memory = MainMemory()
        self.pagetable = PageTable(self.config.page_bytes)
        self.dise_engine = DiseEngine()
        self.dise_controller = DiseController(self.dise_engine,
                                              self.config.dise,
                                              process_name=program.name)
        self.dise_regs = DiseRegisterFile(self.config.dise.num_dise_registers)
        self.timing: Optional[TimingModel] = (
            TimingModel(self.config) if detailed_timing else None)
        self.stats = SimStats()
        self.trap_handler = trap_handler

        # Debugging substrates.
        self.hw_watch_ranges: list[tuple[int, int]] = []  # [lo, hi) ranges
        self.breakpoint_registers: set[int] = set()
        self.single_step = False
        self.statement_pcs: frozenset[int] = frozenset()

        # Optional store observer (used for workload characterization).
        self.store_observer: Optional[Callable[[int, int, int, int], None]] = None

        # PCs of statically inserted instrumentation (binary rewriting):
        # they commit and cost cycles but do not count as application
        # work, so run limits compare equal application progress.
        self.instrumentation_pcs: frozenset[int] = frozenset()

        # Optional per-instruction observer (used by the tracer):
        # callable(pc, disepc, instruction, is_dise_inserted).
        self.instruction_observer = None

        # Interactive mode: pause execution when a trap classifies as a
        # user transition (the debugger hands control to the user).
        self.stop_on_user = False
        self.stopped_at_user = False

        # Architectural state.
        self.regs = [0] * 32
        self.pc = 0
        self.halted = False

        # DISE expansion state.
        self._expansion: Optional[list[Instruction]] = None
        self._exp_index = 0
        self._trigger_pc = 0
        self._in_dise_function = False
        self._dise_return: Optional[tuple[int, list[Instruction], int]] = None

        self._load_program()

    # -- setup -------------------------------------------------------------

    def _load_program(self) -> None:
        program = self.program
        self._text: list[Instruction] = program.instructions
        self._text_base = TEXT_BASE
        for item in program.data_items:
            symbol = program.symbols[item.name]
            if item.init:
                self.memory.write_bytes(symbol.address, item.init)
        self.regs[SP] = STACK_TOP
        self.pc = program.entry_pc
        self.statement_pcs = frozenset(
            program.pc_of_index(i) for i in program.statement_starts)

    def reload_text(self) -> None:
        """Re-read the program's instruction list (after appends)."""
        self._text = self.program.instructions
        self.statement_pcs = frozenset(
            self.program.pc_of_index(i)
            for i in self.program.statement_starts)

    def load_appended_data(self) -> None:
        """Write initializers of data items appended after construction."""
        for item in self.program.data_items:
            symbol = self.program.symbols[item.name]
            if item.init:
                self.memory.write_bytes(symbol.address, item.init)

    def reset_stats(self) -> None:
        """Start a fresh measurement interval (e.g. after warm-up).

        Architectural and microarchitectural state is preserved; only
        statistics and the cycle counter restart.
        """
        self.stats = SimStats()
        if self.timing is not None:
            self.timing.reset_counters()

    # -- register helpers -----------------------------------------------------

    def _read_reg(self, reg: int, dise_ok: bool) -> int:
        if reg == ZERO_REG:
            return 0
        if reg < DISE_REG_BASE:
            return self.regs[reg]
        if not dise_ok:
            raise SimulationError(
                "conventional instruction read DISE register "
                f"dr{reg - DISE_REG_BASE} at pc={self.pc:#x}")
        return self.dise_regs.read(reg - DISE_REG_BASE)

    def _write_reg(self, reg: int, value: int, dise_ok: bool) -> None:
        if reg == ZERO_REG:
            return
        if reg < DISE_REG_BASE:
            self.regs[reg] = value & MASK64
            return
        if not dise_ok:
            raise SimulationError(
                "conventional instruction wrote DISE register "
                f"dr{reg - DISE_REG_BASE} at pc={self.pc:#x}")
        self.dise_regs.write(reg - DISE_REG_BASE, value)

    # -- trap delivery ----------------------------------------------------------

    def deliver_trap(self, event: TrapEvent) -> TransitionKind:
        """Route a trap to the debugger; classify, account, and charge it."""
        self.stats.traps += 1
        if self.trap_handler is None:
            kind = TransitionKind.NONE
        else:
            kind = self.trap_handler(event)
        self.stats.record_transition(kind)
        if self.timing is not None and kind is not TransitionKind.NONE:
            self.timing.debugger_transition(kind in _SPURIOUS)
        if kind is TransitionKind.USER and self.stop_on_user:
            self.stopped_at_user = True
        return kind

    # -- execution -----------------------------------------------------------------

    def run(self, max_app_instructions: Optional[int] = None) -> RunResult:
        """Run until halt or until the application has committed
        ``max_app_instructions`` instructions.

        The limit counts *application* instructions only, so different
        debugger implementations execute identical application work
        (paper methodology: "simulate the same number of instructions
        for each experiment").
        """
        limit = max_app_instructions if max_app_instructions is not None else -1
        stats = self.stats
        timing = self.timing
        regs = self.regs
        memory = self.memory
        pagetable = self.pagetable
        engine = self.dise_engine
        text = self._text
        text_base = self._text_base
        free_nops = self.config.free_nops

        self.stopped_at_user = False
        while not self.halted:
            if limit >= 0 and stats.app_instructions >= limit:
                break
            if self.stopped_at_user:
                break

            expansion = self._expansion
            if expansion is not None:
                inst = expansion[self._exp_index]
                is_dise = True
            else:
                pc = self.pc
                index = (pc - text_base) >> 2
                if index < 0 or index >= len(text):
                    raise SimulationError(f"fetch outside text: pc={pc:#x}")
                inst = text[index]
                if self.breakpoint_registers and pc in self.breakpoint_registers:
                    self.deliver_trap(TrapEvent(TrapKind.BREAKPOINT, pc))
                if self.single_step and pc in self.statement_pcs:
                    self.deliver_trap(TrapEvent(TrapKind.SINGLE_STEP, pc))
                if timing is not None:
                    timing.fetch(pc)
                if (engine.enabled and engine._productions
                        and not self._in_dise_function):
                    seq = engine.expand(inst, pc)
                    if seq is not None:
                        stats.dise_expansions += 1
                        self._expansion = expansion = seq
                        self._exp_index = 0
                        self._trigger_pc = pc
                        inst = seq[0]
                        is_dise = True
                    else:
                        is_dise = False
                else:
                    is_dise = False

            self._execute(inst, is_dise, stats, timing, regs, memory,
                          pagetable, free_nops)

        stats.cycles = timing.total_cycles if timing is not None else \
            stats.total_instructions
        return RunResult(stats=stats, halted=self.halted,
                         stopped_at_user=self.stopped_at_user)

    # pylint: disable=too-many-branches,too-many-statements
    def _execute(self, inst: Instruction, is_dise: bool, stats, timing,
                 regs, memory, pagetable, free_nops: bool) -> None:
        """Execute one instruction and update fetch state."""
        observer = self.instruction_observer
        if observer is not None:
            observer(self.pc, self._exp_index if is_dise else 0, inst,
                     is_dise)
        opclass = inst.info.opclass
        opcode = inst.opcode

        # -- account the committed instruction -----------------------------
        if opclass is OpClass.NOP and free_nops:
            stats.nops_elided += 1
            self._advance()
            return
        if is_dise:
            if self._exp_index == 0:
                stats.app_instructions += 1
            else:
                stats.dise_instructions += 1
        elif self._in_dise_function:
            stats.function_instructions += 1
        elif self.instrumentation_pcs and self.pc in self.instrumentation_pcs:
            stats.dise_instructions += 1
        else:
            stats.app_instructions += 1
        if timing is not None:
            timing.commit()

        dise_ok = is_dise  # may DISE registers be named as operands?

        if opclass is OpClass.ALU:
            if inst.info.format is Format.MEMORY:  # lda
                base = self._read_reg(inst.rs1, dise_ok)
                self._write_reg(inst.rd, (base + inst.imm) & MASK64, dise_ok)
            elif opcode is Opcode.MOV:
                self._write_reg(inst.rd, self._read_reg(inst.rs1, dise_ok),
                                dise_ok)
            else:
                a = self._read_reg(inst.rs1, dise_ok)
                b = (self._read_reg(inst.rs2, dise_ok)
                     if inst.rs2 is not None else inst.imm & MASK64)
                self._write_reg(inst.rd, alu_result(opcode, a, b), dise_ok)
            self._advance()
            return

        if opclass is OpClass.LOAD:
            base = self._read_reg(inst.rs1, dise_ok)
            ea = (base + inst.imm) & MASK64
            size = inst.info.mem_size
            value = memory.read_int(ea, size)
            self._write_reg(inst.rd, value, dise_ok)
            stats.loads += 1
            if timing is not None:
                timing.load(ea)
            self._advance()
            return

        if opclass is OpClass.STORE:
            base = self._read_reg(inst.rs1, dise_ok)
            ea = (base + inst.imm) & MASK64
            size = inst.info.mem_size
            value = self._read_reg(inst.rd, dise_ok)
            self.last_store_addr = ea
            self.last_store_size = size
            self.last_store_value = value
            stats.stores += 1
            if timing is not None:
                timing.store(ea)
            observer = self.store_observer
            if observer is not None:
                observer(ea, size, value, memory.read_int(ea, size))
            faulted = pagetable.any_protected and pagetable.check_store(ea, size)
            memory.write_int(ea, size, value)
            if faulted:
                stats.page_fault_traps += 1
                self.deliver_trap(TrapEvent(TrapKind.PAGE_FAULT, self.pc,
                                            ea, size, value))
            if self.hw_watch_ranges:
                end = ea + size
                for lo, hi in self.hw_watch_ranges:
                    if ea < hi and end > lo:
                        self.deliver_trap(TrapEvent(
                            TrapKind.HW_WATCHPOINT, self.pc, ea, size, value))
                        break
            self._advance()
            return

        if opclass is OpClass.BRANCH:
            value = self._read_reg(inst.rs1, dise_ok)
            taken = branch_taken(opcode, value)
            stats.branches += 1
            if timing is not None:
                # Decorrelate predictor indices of expansion-internal
                # branches from the trigger's own PC.
                branch_pc = self.pc + (self._exp_index << 20 if is_dise else 0)
                timing.conditional_branch(branch_pc, taken)
            if taken:
                stats.taken_branches += 1
                self._jump(inst.target)
            else:
                self._advance()
            return

        if opclass is OpClass.JUMP:
            self._execute_jump(inst, opcode, dise_ok, timing)
            return

        if opclass is OpClass.TRAP:
            if opcode is Opcode.CTRAP:
                if self._read_reg(inst.rs1, dise_ok) == 0:
                    self._advance()
                    return
            self.deliver_trap(TrapEvent(TrapKind.TRAP, self.pc,
                                        self.last_store_addr,
                                        self.last_store_size,
                                        self.last_store_value))
            self._advance()
            return

        if opclass is OpClass.DISE_BRANCH:
            self._execute_dise_branch(inst, opcode, stats, timing)
            return

        if opclass is OpClass.DISE_CALL:
            taken = True
            if opcode is Opcode.D_CCALL:
                taken = self._read_reg(inst.rs1, True) != 0
            if not taken:
                self._advance()
                return
            if self._expansion is None:
                raise SimulationError("DISE call outside a replacement "
                                      f"sequence at pc={self.pc:#x}")
            self._dise_return = (self._trigger_pc, self._expansion,
                                 self._exp_index + 1)
            self._in_dise_function = True
            self._expansion = None
            suppressed = timing.dise_call() if timing is not None else True
            if not suppressed:
                stats.dise_call_flushes += 1
            self.pc = inst.target
            return

        if opclass is OpClass.DISE_RET:
            if not self._in_dise_function or self._dise_return is None:
                raise SimulationError(
                    f"d_ret outside a DISE-called function at pc={self.pc:#x}")
            trigger_pc, expansion, resume = self._dise_return
            self._dise_return = None
            self._in_dise_function = False
            if timing is not None:
                timing.dise_return()
                stats.dise_call_flushes += 0 if timing.multithreaded else 1
            if resume >= len(expansion):
                self._expansion = None
                self.pc = trigger_pc + INSTRUCTION_BYTES
            else:
                self._expansion = expansion
                self._exp_index = resume
                self._trigger_pc = trigger_pc
            return

        if opclass is OpClass.DISE_MOVE:
            if not self._in_dise_function:
                raise SimulationError(
                    f"{inst.info.mnemonic} outside a DISE-called function "
                    f"at pc={self.pc:#x}")
            if opcode is Opcode.D_MFR:
                self._write_reg(inst.rd, self.dise_regs.read(inst.imm), False)
            else:  # D_MTR
                self.dise_regs.write(inst.imm,
                                     self._read_reg(inst.rs1, False))
            self._advance()
            return

        if opclass is OpClass.NOP:
            self._advance()
            return

        if opclass is OpClass.HALT:
            self.halted = True
            return

        if opclass is OpClass.CODEWORD:
            raise SimulationError(
                f"codeword {inst.imm} executed without a matching DISE "
                f"production at pc={self.pc:#x}")

        raise SimulationError(f"unhandled opcode {opcode.name}")

    # -- store context for trap handlers -------------------------------------

    last_store_addr: int = 0
    last_store_size: int = 0
    last_store_value: int = 0

    # -- control-flow helpers --------------------------------------------------

    def _advance(self) -> None:
        if self._expansion is not None:
            self._exp_index += 1
            if self._exp_index >= len(self._expansion):
                self._expansion = None
                self.pc = self._trigger_pc + INSTRUCTION_BYTES
        else:
            self.pc += INSTRUCTION_BYTES

    def _jump(self, target: int) -> None:
        """Conventional control transfer: <newPC : 0>."""
        self._expansion = None
        self.pc = target

    def _execute_jump(self, inst: Instruction, opcode: Opcode,
                      dise_ok: bool, timing) -> None:
        if opcode is Opcode.BR:
            if timing is not None:
                timing.direct_jump()
            self._jump(inst.target)
            return
        if opcode is Opcode.JSR:
            if self._expansion is not None:
                return_pc = self._trigger_pc + INSTRUCTION_BYTES
            else:
                return_pc = self.pc + INSTRUCTION_BYTES
            self._write_reg(inst.rd, return_pc, dise_ok)
            if timing is not None:
                timing.call(self.pc, return_pc)
            self._jump(inst.target)
            return
        target = self._read_reg(inst.rs1, dise_ok)
        if opcode is Opcode.RET:
            if timing is not None:
                timing.return_(self.pc, target)
            self._jump(target)
            return
        # JMP
        if timing is not None:
            timing.indirect_jump(self.pc, target)
        self._jump(target)

    def _execute_dise_branch(self, inst: Instruction, opcode: Opcode,
                             stats, timing) -> None:
        if self._expansion is None:
            raise SimulationError("DISE branch outside a replacement "
                                  f"sequence at pc={self.pc:#x}")
        if opcode is Opcode.D_BR:
            taken = True
        else:
            value = self._read_reg(inst.rs1, True)
            taken = (value == 0) if opcode is Opcode.D_BEQ else (value != 0)
        if not taken:
            self._advance()
            return
        stats.dise_branch_flushes += 1
        if timing is not None:
            timing.dise_branch_taken()
        self._exp_index += 1 + inst.imm
        if self._exp_index >= len(self._expansion):
            self._expansion = None
            self.pc = self._trigger_pc + INSTRUCTION_BYTES
