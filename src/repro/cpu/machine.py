"""The simulated machine: fetch, DISE expansion, execute, trap delivery.

:class:`Machine` executes a :class:`~repro.isa.program.Program`
functionally, in program order, while streaming events into a
:class:`~repro.cpu.timing.TimingModel`.  The DISE engine sits between
fetch and execute exactly as in the paper: every *fetched* instruction
is offered to the engine, and a match substitutes the instantiated
replacement sequence, whose elements execute with DISEPC semantics:

* taken DISE branches move only the DISEPC and cost a pipeline flush
  (implemented via the misprediction-recovery path);
* ``d_call``/``d_ccall`` save ``<PC : DISEPC+1>``, flush, and redirect
  fetch to conventional code with DISE expansion disabled;
* ``d_ret`` restores the saved pair, flushes, and re-enables expansion;
* conventional control transfers inside a sequence jump to
  ``<newPC : 0>``, abandoning the rest of the sequence.

The machine also implements the non-DISE debugging substrates the paper
compares against: hardware watchpoint/breakpoint registers (trap on
matching store/fetch), page-protection faults (via the
:class:`~repro.memory.pagetable.PageTable`), and statement-granularity
single-stepping.  All such events are delivered to a single
``trap_handler`` callback — the "debugger process" — which classifies
the transition (:class:`~repro.cpu.stats.TransitionKind`); the timing
model then charges it (spurious: flush + 100,000 cycles; user: free).

Interpreter organization (see DESIGN.md "Interpreter architecture"):
execution dispatches through a table of per-opclass handler methods
indexed by each instruction's cached decode record
(:class:`~repro.isa.instruction.Decoded`), with ALU and JUMP split into
opcode-level subcases.  Runs without a timing model take a separate
loop body bound to timing-free handlers, so the functional fast path
performs no ``timing is not None`` checks at all.  The previous
monolithic if/elif interpreter is retained behind
``MachineConfig.legacy_interpreter`` so the differential test suite can
assert bit-identical semantics; it will be removed once the dispatch
table has baked.

Fetch-stage traps (breakpoint registers, single-stepping) stop an
interactive run *before* the trapped instruction executes, like a real
debugger, and are not re-fired for the same fetch on resume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum, unique
from typing import Callable, Optional

from repro.config import MachineConfig, DEFAULT_CONFIG
from repro.errors import SimulationError
from repro.cpu.functional import MASK64, alu_result, branch_taken
from repro.cpu.stats import SimStats, TransitionKind
from repro.cpu.timing import TimingModel
from repro.dise.controller import DiseController
from repro.dise.engine import DiseEngine
from repro.dise.registers import DiseRegisterFile
from repro.isa.instruction import (H_ALU_IMM, H_ALU_LDA, H_ALU_MOV, H_ALU_REG,
                                   H_BRANCH, H_CODEWORD, H_CTRAP,
                                   H_DISE_BRANCH, H_DISE_CALL, H_DISE_MOVE,
                                   H_DISE_RET, H_ERET, H_HALT, H_JUMP_BR,
                                   H_JUMP_JMP, H_JUMP_JSR, H_JUMP_RET, H_LOAD,
                                   H_NOP, H_STORE, H_SYSCALL, H_TRAP,
                                   NUM_HANDLERS, Instruction)
from repro.isa.opcodes import Format, Opcode, OpClass
from repro.isa.program import (INSTRUCTION_BYTES, Program, STACK_TOP,
                               STACK_BYTES, TEXT_BASE)
from repro.isa.registers import DISE_REG_BASE, SP, ZERO_REG
from repro.memory.main_memory import MainMemory
from repro.memory.pagetable import PageTable
from repro.replay.checkpoint import Checkpoint, CheckpointStore


@unique
class TrapKind(Enum):
    """Why control crossed into the debugger."""

    TRAP = "trap"  # explicit trap/ctrap instruction
    HW_WATCHPOINT = "hw_watchpoint"  # hardware watchpoint register match
    BREAKPOINT = "breakpoint"  # breakpoint register match at fetch
    PAGE_FAULT = "page_fault"  # store to a write-protected page
    SINGLE_STEP = "single_step"  # statement-granularity stepping


# Architectural trap causes (latched in ``Machine.trap_cause``).  These
# are *kernel* traps — serviced by a guest handler at the trap vector or
# by the host scheduler (repro.kernel) — not debugger transitions.
CAUSE_TIMER = 1  # preemption timer quantum expired
CAUSE_SYSCALL = 2  # syscall instruction executed

# Syscall numbers (passed in r1; results returned in r1).
SYS_YIELD = 1  # voluntarily end the current quantum
SYS_GETPID = 2  # r1 = calling process id
SYS_EXIT = 3  # terminate the calling process


class _TrapPending(Exception):
    """Internal: unwinds the interpreter loops when a trap must be
    serviced by the host (no guest trap vector installed).  Raised only
    from the syscall handler, caught in :meth:`Machine._run_core` — the
    hot loops pay nothing for it."""


@dataclass
class TrapEvent:
    """Context delivered to the trap handler."""

    kind: TrapKind
    pc: int
    address: int = 0  # faulting/matching store address (when relevant)
    size: int = 0
    value: int = 0  # value being stored (when relevant)


TrapHandler = Callable[[TrapEvent], TransitionKind]

_SPURIOUS = frozenset({
    TransitionKind.SPURIOUS_ADDRESS,
    TransitionKind.SPURIOUS_VALUE,
    TransitionKind.SPURIOUS_PREDICATE,
})


@dataclass
class MachineRun:
    """Outcome of a :meth:`Machine.run` call (the low-level record).

    Renamed from ``RunResult`` when that name moved to the unified
    result type in :mod:`repro.results`; the old name is kept as a
    deprecated module attribute.
    """

    stats: SimStats
    halted: bool
    stopped_at_user: bool = False

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def overhead_vs(self, baseline: "MachineRun") -> float:
        """Execution time normalized to ``baseline`` (1.0 = no overhead)."""
        if baseline.stats.cycles == 0:
            raise ValueError("baseline has zero cycles")
        return self.stats.cycles / baseline.stats.cycles


class Machine:
    """A single-core machine running one program."""

    def __init__(
        self,
        program: Program,
        config: MachineConfig | None = None,
        trap_handler: Optional[TrapHandler] = None,
        detailed_timing: bool = True,
    ):
        self.config = config or DEFAULT_CONFIG
        self.program = program
        self.memory = MainMemory()
        self.pagetable = PageTable(self.config.page_bytes)
        self.dise_engine = DiseEngine()
        self.dise_controller = DiseController(self.dise_engine,
                                              self.config.dise,
                                              process_name=program.name)
        self.dise_regs = DiseRegisterFile(self.config.dise.num_dise_registers)
        self.timing: Optional[TimingModel] = (
            TimingModel(self.config) if detailed_timing else None)
        self.stats = SimStats()
        self.trap_handler = trap_handler

        # Debugging substrates.
        self.hw_watch_ranges: list[tuple[int, int]] = []  # [lo, hi) ranges
        self.breakpoint_registers: set[int] = set()
        self.single_step = False
        self.statement_pcs: frozenset[int] = frozenset()

        # Optional store observer (used for workload characterization).
        self.store_observer: Optional[Callable[[int, int, int, int], None]] = None

        # PCs of statically inserted instrumentation (binary rewriting):
        # they commit and cost cycles but do not count as application
        # work, so run limits compare equal application progress.
        self.instrumentation_pcs: frozenset[int] = frozenset()

        # Optional per-instruction observer (used by the tracer):
        # callable(pc, disepc, instruction, is_dise_inserted).
        self.instruction_observer = None

        # Interactive mode: pause execution when a trap classifies as a
        # user transition (the debugger hands control to the user).
        self.stop_on_user = False
        self.stopped_at_user = False

        # Architectural state.
        self.regs = [0] * 32
        self.pc = 0
        self.halted = False

        # Privilege / trap architecture (see DESIGN.md §14).  The
        # machine boots in user mode; trap entry latches cause/epc/value
        # and raises privilege.  With a guest trap vector installed
        # (``trap_vector`` nonzero) fetch redirects there; otherwise the
        # cause is held in ``pending_trap`` for the host — the attached
        # kernel scheduler, or the :meth:`run` caller.
        self.kernel_mode = False
        self.trap_vector = 0
        self.trap_cause = 0
        self.trap_epc = 0
        self.trap_value = 0
        self.pending_trap: Optional[int] = None

        # Preemption timer: a quantum of application instructions.  The
        # deadline is an *absolute* app-instruction count; run slices
        # are clipped to it (exactly like checkpoint boundaries), so
        # preemption points are deterministic and identical across
        # interpreter tiers at zero per-instruction cost.  -1 = the next
        # run slice arms a fresh quantum.
        self.timer_quantum = 0
        self.timer_deadline = -1

        # Process identity (multi-process machines: see repro.kernel).
        self.current_process = program.name
        self._kernel = None

        # DISE expansion state.
        self._expansion: Optional[list[Instruction]] = None
        self._exp_index = 0
        self._trigger_pc = 0
        self._in_dise_function = False
        self._dise_return: Optional[tuple[int, list[Instruction], int]] = None
        # Has the active expansion executed its store yet?  Gates the
        # store context attached to explicit trap delivery.
        self._expansion_did_store = False

        # Fetch-stage trap whose stop was already taken: do not re-fire
        # it for the same fetch when the interactive run resumes.
        self._fetch_trap_resume_pc: Optional[int] = None

        # Code-version counter: bumped by reload_text, patch_text, and
        # self-modifying stores into text pages.  The compiled execution
        # tier keys its block cache on it (plus the DISE engine's own
        # version counter), so any code mutation drops compiled blocks.
        self.text_version = 0
        interp = ("legacy" if self.config.legacy_interpreter
                  else self.config.interpreter)
        if interp not in ("table", "legacy", "compiled"):
            raise ValueError(f"unknown interpreter {interp!r}; expected "
                             "'table', 'legacy', or 'compiled'")
        self._interp = interp
        self._compiled = None  # lazily created CompiledTier

        # Periodic auto-checkpointing (see repro.replay): disabled until
        # configured or enable_checkpoints() is called.
        self.checkpoint_store: Optional[CheckpointStore] = None
        self._checkpoint_interval = self.config.checkpoint_interval
        self._checkpoint_fn: Callable[[], object] = self.snapshot
        if self._checkpoint_interval > 0:
            self.checkpoint_store = CheckpointStore()

        self._handlers = self._build_handler_table()

        self._load_program()

    # -- setup -------------------------------------------------------------

    def _load_program(self) -> None:
        program = self.program
        self._text: list[Instruction] = program.instructions
        self._text_base = TEXT_BASE
        self._text_end = TEXT_BASE + INSTRUCTION_BYTES * len(self._text)
        for item in program.data_items:
            symbol = program.symbols[item.name]
            if item.init:
                self.memory.write_bytes(symbol.address, item.init)
        self.regs[SP] = STACK_TOP
        self.pc = program.entry_pc
        self.statement_pcs = frozenset(
            program.pc_of_index(i) for i in program.statement_starts)

    def reload_text(self) -> None:
        """Re-read the program's instruction list (after appends).

        Bumps the code version: compiled blocks and decode records that
        predate the reload must not survive it.  Every instruction's
        ``decoded`` cache is dropped (re-decoded lazily) because the
        caller may have rewritten instruction fields in place — the
        machine cannot tell which slots changed.
        """
        new_text = self.program.instructions
        for inst in new_text:
            inst.decoded = None
        self._text = new_text
        self._text_end = TEXT_BASE + INSTRUCTION_BYTES * len(new_text)
        self.text_version += 1
        self.statement_pcs = frozenset(
            self.program.pc_of_index(i)
            for i in self.program.statement_starts)

    def patch_text(self, pc: int, instruction: Instruction) -> None:
        """Replace the instruction at ``pc`` (self-modifying code API).

        Bumps the code version so every interpreter tier observes the
        new encoding: the table/legacy tiers read the slot directly, and
        the compiled tier drops its block cache.
        """
        index = (pc - self._text_base) >> 2
        if (pc & 3) or index < 0 or index >= len(self._text):
            raise SimulationError(f"patch outside text: pc={pc:#x}")
        instruction.decoded = None
        self._text[index] = instruction
        self.text_version += 1

    def _note_text_store(self, ea: int, size: int) -> None:
        """A store overlapped the text region: invalidate cached decode
        state.  Text is not memory-backed (instructions are records, not
        encodings), so the architectural effect of such a store is only
        on the data bytes; but any cached decode records and compiled
        blocks covering the stored-to slots must be dropped so a
        subsequent ``patch_text``-style mutation cannot execute stale
        state.
        """
        self.text_version += 1
        text = self._text
        first = (max(ea, self._text_base) - self._text_base) >> 2
        last = (min(ea + size, self._text_end) - 1 - self._text_base) >> 2
        for index in range(first, last + 1):
            if 0 <= index < len(text):
                text[index].decoded = None

    def load_appended_data(self) -> None:
        """Write initializers of data items appended after construction."""
        for item in self.program.data_items:
            symbol = self.program.symbols[item.name]
            if item.init:
                self.memory.write_bytes(symbol.address, item.init)

    def reset_stats(self) -> None:
        """Start a fresh measurement interval (e.g. after warm-up).

        Architectural and microarchitectural state is preserved; only
        statistics and the cycle counter restart.
        """
        self.stats = SimStats()
        if self.timing is not None:
            self.timing.reset_counters()

    # -- snapshots ---------------------------------------------------------
    #
    # The machine implements the Snapshotable protocol (see
    # repro.replay): snapshot() captures every piece of mutable state —
    # architectural, microarchitectural, DISE, debug substrate, and
    # mid-expansion fetch state — so restore() rewinds a run exactly,
    # including a run paused inside a replacement sequence.  Memory is
    # captured copy-on-write (see MainMemory.snapshot), so checkpoints
    # of a large, mostly-idle footprint stay cheap.  restore() mutates
    # components in place and never replaces bound objects (handler
    # tables, the timing model's commit binding, the trap handler).

    def snapshot(self) -> dict:
        """Capture all mutable machine state as an opaque blob.

        The blob shares memory pages copy-on-write with the live
        machine and references installed productions by identity, so it
        is cheap but (when productions or an active expansion exist)
        only restorable in this process.  A blob from an undebugged
        machine contains plain data only and pickles cleanly — the
        harness persists such blobs as warm-start checkpoints.
        """
        expansion = self._expansion
        dise_return = self._dise_return
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "halted": self.halted,
            "stats": self.stats.to_dict(),
            "memory": self.memory.snapshot(),
            "pagetable": self.pagetable.snapshot(),
            "dise_regs": self.dise_regs.snapshot(),
            "dise_engine": self.dise_engine.snapshot(),
            "dise_controller": self.dise_controller.snapshot(),
            "timing": (self.timing.snapshot()
                       if self.timing is not None else None),
            "expansion": (
                list(expansion) if expansion is not None else None,
                self._exp_index, self._trigger_pc, self._in_dise_function,
                ((dise_return[0], list(dise_return[1]), dise_return[2])
                 if dise_return is not None else None),
                self._expansion_did_store),
            "hw_watch_ranges": list(self.hw_watch_ranges),
            "breakpoint_registers": set(self.breakpoint_registers),
            "single_step": self.single_step,
            "statement_pcs": self.statement_pcs,
            "instrumentation_pcs": self.instrumentation_pcs,
            "stop_on_user": self.stop_on_user,
            "stopped_at_user": self.stopped_at_user,
            "fetch_trap_resume_pc": self._fetch_trap_resume_pc,
            "last_store": (self.last_store_addr, self.last_store_size,
                           self.last_store_value),
            "trap": (self.kernel_mode, self.trap_vector, self.trap_cause,
                     self.trap_epc, self.trap_value, self.pending_trap,
                     self.timer_quantum, self.timer_deadline),
            "process": self.current_process,
            "kernel": (self._kernel.snapshot()
                       if self._kernel is not None else None),
        }

    def restore(self, blob: dict) -> None:
        """Rewind the machine to a previous :meth:`snapshot`.

        The blob stays valid (memory re-freezes shared pages), so one
        checkpoint can be restored repeatedly.  Program text is *not*
        part of machine state: instructions appended to the program
        after the snapshot remain visible, while ``statement_pcs``
        (debug substrate) rewinds with the snapshot — call
        :meth:`reload_text` after restoring across an append to re-sync
        statement boundaries.
        """
        kernel_blob = blob.get("kernel")
        if self._kernel is not None and kernel_blob is not None:
            # Realign the live process contexts first: the machine-level
            # fields below describe the process that was *current* at
            # snapshot time, and must restore into that process's
            # component objects (memory, page table, text).
            self._kernel.pre_restore(kernel_blob)
        self.regs = list(blob["regs"])
        self.pc = blob["pc"]
        self.halted = blob["halted"]
        self.stats = SimStats.from_dict(blob["stats"])
        self.memory.restore(blob["memory"])
        self.pagetable.restore(blob["pagetable"])
        self.dise_regs.restore(blob["dise_regs"])
        self.dise_engine.restore(blob["dise_engine"])
        self.dise_controller.restore(blob["dise_controller"])
        if self.timing is not None and blob["timing"] is not None:
            self.timing.restore(blob["timing"])
        (expansion, self._exp_index, self._trigger_pc,
         self._in_dise_function, dise_return,
         self._expansion_did_store) = blob["expansion"]
        self._expansion = list(expansion) if expansion is not None else None
        self._dise_return = (
            (dise_return[0], list(dise_return[1]), dise_return[2])
            if dise_return is not None else None)
        self.hw_watch_ranges = list(blob["hw_watch_ranges"])
        self.breakpoint_registers = set(blob["breakpoint_registers"])
        self.single_step = blob["single_step"]
        self.statement_pcs = blob["statement_pcs"]
        self.instrumentation_pcs = blob["instrumentation_pcs"]
        self.stop_on_user = blob["stop_on_user"]
        self.stopped_at_user = blob["stopped_at_user"]
        self._fetch_trap_resume_pc = blob["fetch_trap_resume_pc"]
        (self.last_store_addr, self.last_store_size,
         self.last_store_value) = blob["last_store"]
        # Trap/timer architecture (absent in pre-kernel blobs, e.g.
        # persisted warm-start checkpoints: default to boot state).
        (self.kernel_mode, self.trap_vector, self.trap_cause,
         self.trap_epc, self.trap_value, self.pending_trap,
         self.timer_quantum, self.timer_deadline) = blob.get(
            "trap", (False, 0, 0, 0, 0, None, 0, -1))
        self.current_process = blob.get("process", self.current_process)
        if self._kernel is not None and kernel_blob is not None:
            self._kernel.post_restore(kernel_blob)
        # The snapshot may predate text mutations and carry a different
        # DISE production set; compiled blocks must never survive a
        # restore.  Cheaper than fingerprinting code versions into the
        # blob, and restore frequency is nowhere near block-compile
        # frequency.  (text_version is cache-coherency state, not
        # machine state: it is deliberately not snapshotted.)
        if self._compiled is not None:
            self._compiled.flush()

    def state_fingerprint(self) -> str:
        """Digest of architectural state, for differential checks.

        Covers registers, PC, halt flag, DISE registers, page
        protections, and memory contents (canonical across page-
        residency layouts).  Statistics and microarchitectural state
        are deliberately excluded: two runs that agree architecturally
        fingerprint equal even if measured differently.
        """
        digest = hashlib.sha256()
        digest.update(repr((
            tuple(self.regs), self.pc, self.halted,
            self.dise_regs.snapshot(),
            tuple(sorted(self.pagetable.snapshot().items())),
        )).encode())
        digest.update(self.memory.state_fingerprint().encode())
        # Trap/privilege/scheduler state joins the digest only when it
        # is live (a kernel attached, or trap state off its boot
        # values), so single-process fingerprints — and every golden
        # recorded before the kernel existed — are unchanged.
        if (self._kernel is not None or self.kernel_mode
                or self.trap_vector or self.trap_cause or self.trap_epc
                or self.trap_value or self.pending_trap is not None):
            digest.update(repr((
                self.kernel_mode, self.trap_vector, self.trap_cause,
                self.trap_epc, self.trap_value, self.pending_trap,
                self.current_process,
            )).encode())
        if self._kernel is not None:
            digest.update(self._kernel.state_fingerprint().encode())
        return digest.hexdigest()

    def _build_handler_table(self) -> tuple:
        """Bind the dispatch table, pre-selected for the timing mode.

        ``detailed_timing=False`` machines get timing-free handler
        variants so the functional fast path never tests
        ``timing is not None``.
        """
        timed = self.timing is not None
        table: list = [None] * NUM_HANDLERS
        table[H_ALU_LDA] = self._h_alu_lda
        table[H_ALU_MOV] = self._h_alu_mov
        table[H_ALU_IMM] = self._h_alu_imm
        table[H_ALU_REG] = self._h_alu_reg
        table[H_LOAD] = self._h_load_t if timed else self._h_load_f
        table[H_STORE] = self._h_store_t if timed else self._h_store_f
        table[H_BRANCH] = self._h_branch_t if timed else self._h_branch_f
        table[H_JUMP_BR] = self._h_jump_br_t if timed else self._h_jump_br_f
        table[H_JUMP_JSR] = self._h_jump_jsr_t if timed else self._h_jump_jsr_f
        table[H_JUMP_RET] = self._h_jump_ret_t if timed else self._h_jump_ret_f
        table[H_JUMP_JMP] = self._h_jump_jmp_t if timed else self._h_jump_jmp_f
        table[H_TRAP] = self._h_trap
        table[H_CTRAP] = self._h_ctrap
        table[H_DISE_BRANCH] = (self._h_dise_branch_t if timed
                                else self._h_dise_branch_f)
        table[H_DISE_CALL] = (self._h_dise_call_t if timed
                              else self._h_dise_call_f)
        table[H_DISE_RET] = (self._h_dise_ret_t if timed
                             else self._h_dise_ret_f)
        table[H_DISE_MOVE] = self._h_dise_move
        table[H_NOP] = self._h_nop
        table[H_HALT] = self._h_halt
        table[H_CODEWORD] = self._h_codeword
        table[H_SYSCALL] = self._h_syscall
        table[H_ERET] = self._h_eret_t if timed else self._h_eret_f
        return tuple(table)

    # -- register helpers -----------------------------------------------------

    def _read_reg(self, reg: int, dise_ok: bool) -> int:
        if reg == ZERO_REG:
            return 0
        if reg < DISE_REG_BASE:
            return self.regs[reg]
        if not dise_ok:
            raise SimulationError(
                "conventional instruction read DISE register "
                f"dr{reg - DISE_REG_BASE} at pc={self.pc:#x}")
        return self.dise_regs.read(reg - DISE_REG_BASE)

    def _write_reg(self, reg: int, value: int, dise_ok: bool) -> None:
        if reg == ZERO_REG:
            return
        if reg < DISE_REG_BASE:
            self.regs[reg] = value & MASK64
            return
        if not dise_ok:
            raise SimulationError(
                "conventional instruction wrote DISE register "
                f"dr{reg - DISE_REG_BASE} at pc={self.pc:#x}")
        self.dise_regs.write(reg - DISE_REG_BASE, value)

    # -- trap delivery ----------------------------------------------------------

    def deliver_trap(self, event: TrapEvent) -> TransitionKind:
        """Route a trap to the debugger; classify, account, and charge it."""
        self.stats.traps += 1
        if self.trap_handler is None:
            kind = TransitionKind.NONE
        else:
            kind = self.trap_handler(event)
        self.stats.record_transition(kind)
        if self.timing is not None and kind is not TransitionKind.NONE:
            self.timing.debugger_transition(kind in _SPURIOUS)
        if kind is TransitionKind.USER and self.stop_on_user:
            self.stopped_at_user = True
        return kind

    def _deliver_explicit_trap(self, is_dise: bool) -> None:
        """Deliver a ``trap``/``ctrap``, attaching store context only
        when the trap follows the store-check sequence of the active
        expansion (or a function it called).  A breakpoint-style trap
        observed after an unrelated store must not leak that store's
        address/value.
        """
        if self._expansion_did_store and (is_dise or self._in_dise_function):
            event = TrapEvent(TrapKind.TRAP, self.pc,
                              self.last_store_addr,
                              self.last_store_size,
                              self.last_store_value)
        else:
            event = TrapEvent(TrapKind.TRAP, self.pc)
        self.deliver_trap(event)

    def _fetch_stage_traps(self, pc: int) -> bool:
        """Deliver breakpoint/single-step traps for the fetch at ``pc``.

        Returns False when the run must pause *before* the trapped
        instruction executes (an interactive stop): a real debugger
        stops with the breakpointed instruction still pending.  The pc
        is remembered so resuming does not re-fire the same trap.
        """
        resume_pc = self._fetch_trap_resume_pc
        if resume_pc is not None:
            self._fetch_trap_resume_pc = None
            if pc == resume_pc:
                return True
        if self.breakpoint_registers and pc in self.breakpoint_registers:
            self.deliver_trap(TrapEvent(TrapKind.BREAKPOINT, pc))
        if self.single_step and pc in self.statement_pcs:
            self.deliver_trap(TrapEvent(TrapKind.SINGLE_STEP, pc))
        if self.stopped_at_user:
            self._fetch_trap_resume_pc = pc
            return False
        return True

    # -- execution -----------------------------------------------------------------

    def run(self, max_app_instructions: Optional[int] = None) -> MachineRun:
        """Run until halt or until the application has committed
        ``max_app_instructions`` instructions.

        The limit counts *application* instructions only, so different
        debugger implementations execute identical application work
        (paper methodology: "simulate the same number of instructions
        for each experiment").
        """
        limit = max_app_instructions if max_app_instructions is not None else -1
        self.stopped_at_user = False
        if self._kernel is not None:
            # Multi-process machine: the kernel scheduler drives the run
            # (arming quanta, servicing traps, context-switching), so
            # every existing caller — backends, reverse execution,
            # time-travel queries, the harness — transparently debugs a
            # multi-process workload.
            self._kernel.run(limit)
        else:
            self._run_core(limit)
        stats = self.stats
        stats.cycles = self.timing.total_cycles if self.timing is not None \
            else stats.total_instructions
        return MachineRun(stats=stats, halted=self.halted,
                         stopped_at_user=self.stopped_at_user)

    def attach_kernel(self, kernel) -> None:
        """Hand the run loop to a :class:`repro.kernel.Kernel`.

        After attachment :meth:`run` delegates to the kernel's scheduler
        loop; the kernel calls back into :meth:`_run_core` for each
        scheduling slice.
        """
        self._kernel = kernel
        self.timer_quantum = kernel.quantum
        self.timer_deadline = -1

    def _dispatch_run(self, limit: int) -> None:
        interp = self._interp
        if interp == "legacy":
            self._run_legacy(limit)
        elif interp == "compiled":
            if self._compiled is None:
                from repro.cpu.compiled import CompiledTier
                self._compiled = CompiledTier(self)
            self._compiled.run(limit)
        elif self.timing is not None:
            self._run_table_timed(limit)
        else:
            self._run_table_functional(limit)

    def _run_core(self, limit: int) -> None:
        """Run in slices, composing every between-instruction event.

        The hot interpreter loops are untouched: they are invoked with
        limits clipped to the nearest of (a) the caller's run limit,
        (b) the next checkpoint-interval boundary, and (c) the
        preemption-timer deadline.  Checkpoints are taken and timer
        interrupts raised *between* slices — never mid-instruction — so
        slicing is invisible to program semantics (a sliced run is
        bit-identical to an unsliced one) and preemption points land on
        exact application-instruction counts on every interpreter tier.

        A slice also ends when a syscall trap must be serviced by the
        host (``pending_trap``); the attached kernel (or the caller)
        services it and re-enters.
        """
        stats = self.stats
        store = self.checkpoint_store
        interval = self._checkpoint_interval if store is not None else 0
        while not self.halted and not self.stopped_at_user:
            if self.pending_trap is not None:
                break
            app = stats.app_instructions
            if 0 <= limit <= app:
                break
            target = limit
            boundary = -1
            if interval > 0:
                boundary = (app // interval + 1) * interval
                target = boundary if target < 0 else min(target, boundary)
            deadline = -1
            if self.timer_quantum > 0:
                deadline = self.timer_deadline
                if deadline < 0:  # arm a fresh quantum
                    deadline = self.timer_deadline = app + self.timer_quantum
                target = deadline if target < 0 else min(target, deadline)
            try:
                self._dispatch_run(target)
            except _TrapPending:
                pass
            if self.halted or self.stopped_at_user:
                break
            app = stats.app_instructions
            if boundary >= 0 and app >= boundary \
                    and self.pending_trap is None:
                store.add(Checkpoint(app, self._checkpoint_fn()))
            if self.pending_trap is not None:
                break
            if 0 <= deadline <= app:
                if self._expansion is not None or self._in_dise_function:
                    # Replacement sequences (and DISE-called functions)
                    # are atomic w.r.t. preemption: slip the deadline to
                    # the next clean instruction boundary.
                    self.timer_deadline = app + 1
                else:
                    self.timer_deadline = -1
                    self._enter_trap(CAUSE_TIMER, self.pc, 0)
                    if self.pending_trap is not None:
                        break
            elif target < 0:
                break  # unlimited slice returned: nothing left to run

    def enable_checkpoints(self, interval: Optional[int] = None,
                           store: Optional[CheckpointStore] = None,
                           snapshot_fn=None) -> CheckpointStore:
        """Turn on periodic auto-checkpointing during :meth:`run`.

        ``snapshot_fn`` overrides what gets captured (the reverse
        controller passes the owning backend's ``snapshot`` so debugger
        bookkeeping rides along); default is :meth:`snapshot`.
        """
        if interval is None:
            interval = self._checkpoint_interval or self.config.checkpoint_interval
        if interval <= 0:
            raise ValueError(f"checkpoint interval {interval} must be > 0")
        self._checkpoint_interval = interval
        self.checkpoint_store = store if store is not None else CheckpointStore()
        self._checkpoint_fn = snapshot_fn or self.snapshot
        return self.checkpoint_store

    def _run_table_timed(self, limit: int) -> None:
        """Dispatch-table loop with the timing model attached."""
        stats = self.stats
        timing = self.timing
        text = self._text
        text_len = len(text)
        text_base = self._text_base
        free_nops = self.config.free_nops
        engine = self.dise_engine
        eng_productions = engine._productions
        eng_by_pc = engine._by_pc
        eng_by_opclass = engine._by_opclass
        eng_by_codeword = engine._by_codeword
        eng_generic = engine._generic
        handlers = self._handlers
        instrumentation_pcs = self.instrumentation_pcs
        nop_class = OpClass.NOP
        codeword_op = Opcode.CODEWORD

        while not self.halted:
            if limit >= 0 and stats.app_instructions >= limit:
                break
            if self.stopped_at_user:
                break

            expansion = self._expansion
            if expansion is not None:
                inst = expansion[self._exp_index]
                d = inst.decoded
                if d is None:
                    d = inst.decode()
                is_dise = True
            else:
                pc = self.pc
                index = (pc - text_base) >> 2
                if index < 0 or index >= text_len:
                    raise SimulationError(f"fetch outside text: pc={pc:#x}")
                inst = text[index]
                d = inst.decoded
                if d is None:
                    d = inst.decode()
                if self.breakpoint_registers or self.single_step:
                    if not self._fetch_stage_traps(pc):
                        break
                timing.fetch(pc)
                is_dise = False
                if (eng_productions and engine.enabled
                        and not self._in_dise_function):
                    if (pc in eng_by_pc or d.opclass in eng_by_opclass
                            or eng_generic
                            or (inst.opcode is codeword_op
                                and inst.imm in eng_by_codeword)):
                        seq = engine.expand(inst, pc)
                        if seq is not None:
                            stats.dise_expansions += 1
                            self._expansion = seq
                            self._exp_index = 0
                            self._trigger_pc = pc
                            self._expansion_did_store = False
                            inst = seq[0]
                            d = inst.decoded
                            if d is None:
                                d = inst.decode()
                            is_dise = True

            observer = self.instruction_observer
            if observer is not None:
                observer(self.pc, self._exp_index if is_dise else 0, inst,
                         is_dise)
            if d.opclass is nop_class and free_nops:
                stats.nops_elided += 1
                self._advance()
                continue
            if is_dise:
                if self._exp_index == 0:
                    stats.app_instructions += 1
                else:
                    stats.dise_instructions += 1
            elif self._in_dise_function:
                stats.function_instructions += 1
            elif instrumentation_pcs and self.pc in instrumentation_pcs:
                stats.dise_instructions += 1
            else:
                stats.app_instructions += 1
            timing.commit()
            handlers[d.handler_index](inst, d, is_dise)

    def _run_table_functional(self, limit: int) -> None:
        """Dispatch-table loop for ``detailed_timing=False`` runs.

        Identical semantics to :meth:`_run_table_timed` minus every
        timing-model interaction (the handler table was bound to the
        timing-free variants at construction).
        """
        stats = self.stats
        text = self._text
        text_len = len(text)
        text_base = self._text_base
        free_nops = self.config.free_nops
        engine = self.dise_engine
        eng_productions = engine._productions
        eng_by_pc = engine._by_pc
        eng_by_opclass = engine._by_opclass
        eng_by_codeword = engine._by_codeword
        eng_generic = engine._generic
        handlers = self._handlers
        instrumentation_pcs = self.instrumentation_pcs
        nop_class = OpClass.NOP
        codeword_op = Opcode.CODEWORD

        while not self.halted:
            if limit >= 0 and stats.app_instructions >= limit:
                break
            if self.stopped_at_user:
                break

            expansion = self._expansion
            if expansion is not None:
                inst = expansion[self._exp_index]
                d = inst.decoded
                if d is None:
                    d = inst.decode()
                is_dise = True
            else:
                pc = self.pc
                index = (pc - text_base) >> 2
                if index < 0 or index >= text_len:
                    raise SimulationError(f"fetch outside text: pc={pc:#x}")
                inst = text[index]
                d = inst.decoded
                if d is None:
                    d = inst.decode()
                if self.breakpoint_registers or self.single_step:
                    if not self._fetch_stage_traps(pc):
                        break
                is_dise = False
                if (eng_productions and engine.enabled
                        and not self._in_dise_function):
                    if (pc in eng_by_pc or d.opclass in eng_by_opclass
                            or eng_generic
                            or (inst.opcode is codeword_op
                                and inst.imm in eng_by_codeword)):
                        seq = engine.expand(inst, pc)
                        if seq is not None:
                            stats.dise_expansions += 1
                            self._expansion = seq
                            self._exp_index = 0
                            self._trigger_pc = pc
                            self._expansion_did_store = False
                            inst = seq[0]
                            d = inst.decoded
                            if d is None:
                                d = inst.decode()
                            is_dise = True

            observer = self.instruction_observer
            if observer is not None:
                observer(self.pc, self._exp_index if is_dise else 0, inst,
                         is_dise)
            if d.opclass is nop_class and free_nops:
                stats.nops_elided += 1
                self._advance()
                continue
            if is_dise:
                if self._exp_index == 0:
                    stats.app_instructions += 1
                else:
                    stats.dise_instructions += 1
            elif self._in_dise_function:
                stats.function_instructions += 1
            elif instrumentation_pcs and self.pc in instrumentation_pcs:
                stats.dise_instructions += 1
            else:
                stats.app_instructions += 1
            handlers[d.handler_index](inst, d, is_dise)

    # -- dispatch-table handlers ------------------------------------------------
    #
    # One method per handler index (see repro.isa.instruction).  Handlers
    # with timing-model interactions come in a timed (`_t`) and a
    # functional (`_f`) variant; `_build_handler_table` binds the right
    # set once.  `d.fast_regs` marks instructions whose operands can be
    # accessed directly in the GPR file (no zero/DISE-register checks).

    def _h_alu_lda(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            regs[inst.rd] = (regs[inst.rs1] + inst.imm) & MASK64
        else:
            base = self._read_reg(inst.rs1, is_dise)
            self._write_reg(inst.rd, (base + inst.imm) & MASK64, is_dise)
        self._advance()

    def _h_alu_mov(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            regs[inst.rd] = regs[inst.rs1]
        else:
            self._write_reg(inst.rd, self._read_reg(inst.rs1, is_dise),
                            is_dise)
        self._advance()

    def _h_alu_imm(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            regs[inst.rd] = d.alu_func(regs[inst.rs1], inst.imm & MASK64)
        else:
            a = self._read_reg(inst.rs1, is_dise)
            self._write_reg(inst.rd, d.alu_func(a, inst.imm & MASK64),
                            is_dise)
        self._advance()

    def _h_alu_reg(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            regs[inst.rd] = d.alu_func(regs[inst.rs1], regs[inst.rs2])
        else:
            a = self._read_reg(inst.rs1, is_dise)
            b = self._read_reg(inst.rs2, is_dise)
            self._write_reg(inst.rd, d.alu_func(a, b), is_dise)
        self._advance()

    def _h_load_f(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            ea = (regs[inst.rs1] + inst.imm) & MASK64
            regs[inst.rd] = self.memory.read_int(ea, d.mem_size)
        else:
            ea = (self._read_reg(inst.rs1, is_dise) + inst.imm) & MASK64
            self._write_reg(inst.rd, self.memory.read_int(ea, d.mem_size),
                            is_dise)
        self.stats.loads += 1
        self._advance()

    def _h_load_t(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            ea = (regs[inst.rs1] + inst.imm) & MASK64
            regs[inst.rd] = self.memory.read_int(ea, d.mem_size)
        else:
            ea = (self._read_reg(inst.rs1, is_dise) + inst.imm) & MASK64
            self._write_reg(inst.rd, self.memory.read_int(ea, d.mem_size),
                            is_dise)
        self.stats.loads += 1
        self.timing.load(ea)
        self._advance()

    def _h_store_f(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            ea = (regs[inst.rs1] + inst.imm) & MASK64
            value = regs[inst.rd]
        else:
            ea = (self._read_reg(inst.rs1, is_dise) + inst.imm) & MASK64
            value = self._read_reg(inst.rd, is_dise)
        size = d.mem_size
        self.last_store_addr = ea
        self.last_store_size = size
        self.last_store_value = value
        if is_dise:
            self._expansion_did_store = True
        self.stats.stores += 1
        self._finish_store(ea, size, value)

    def _h_store_t(self, inst: Instruction, d, is_dise: bool) -> None:
        if d.fast_regs:
            regs = self.regs
            ea = (regs[inst.rs1] + inst.imm) & MASK64
            value = regs[inst.rd]
        else:
            ea = (self._read_reg(inst.rs1, is_dise) + inst.imm) & MASK64
            value = self._read_reg(inst.rd, is_dise)
        size = d.mem_size
        self.last_store_addr = ea
        self.last_store_size = size
        self.last_store_value = value
        if is_dise:
            self._expansion_did_store = True
        self.stats.stores += 1
        self.timing.store(ea)
        self._finish_store(ea, size, value)

    def _finish_store(self, ea: int, size: int, value: int) -> None:
        memory = self.memory
        observer = self.store_observer
        if observer is not None:
            observer(ea, size, value, memory.read_int(ea, size))
        pagetable = self.pagetable
        faulted = pagetable.any_protected and pagetable.check_store(ea, size)
        memory.write_int(ea, size, value)
        if ea < self._text_end and ea + size > self._text_base:
            self._note_text_store(ea, size)
        if faulted:
            self.stats.page_fault_traps += 1
            self.deliver_trap(TrapEvent(TrapKind.PAGE_FAULT, self.pc,
                                        ea, size, value))
        if self.hw_watch_ranges:
            end = ea + size
            for lo, hi in self.hw_watch_ranges:
                if ea < hi and end > lo:
                    self.deliver_trap(TrapEvent(
                        TrapKind.HW_WATCHPOINT, self.pc, ea, size, value))
                    break
        self._advance()

    def _h_branch_f(self, inst: Instruction, d, is_dise: bool) -> None:
        value = (self.regs[inst.rs1] if d.fast_regs
                 else self._read_reg(inst.rs1, is_dise))
        stats = self.stats
        stats.branches += 1
        if d.branch_func(value):
            stats.taken_branches += 1
            self._jump(inst.target)
        else:
            self._advance()

    def _h_branch_t(self, inst: Instruction, d, is_dise: bool) -> None:
        value = (self.regs[inst.rs1] if d.fast_regs
                 else self._read_reg(inst.rs1, is_dise))
        taken = d.branch_func(value)
        stats = self.stats
        stats.branches += 1
        # Decorrelate predictor indices of expansion-internal branches
        # from the trigger's own PC.
        branch_pc = self.pc + (self._exp_index << 20 if is_dise else 0)
        self.timing.conditional_branch(branch_pc, taken)
        if taken:
            stats.taken_branches += 1
            self._jump(inst.target)
        else:
            self._advance()

    def _h_jump_br_f(self, inst: Instruction, d, is_dise: bool) -> None:
        self._jump(inst.target)

    def _h_jump_br_t(self, inst: Instruction, d, is_dise: bool) -> None:
        self.timing.direct_jump()
        self._jump(inst.target)

    def _jsr_return_pc(self) -> int:
        if self._expansion is not None:
            return self._trigger_pc + INSTRUCTION_BYTES
        return self.pc + INSTRUCTION_BYTES

    def _h_jump_jsr_f(self, inst: Instruction, d, is_dise: bool) -> None:
        return_pc = self._jsr_return_pc()
        if d.fast_regs:
            self.regs[inst.rd] = return_pc
        else:
            self._write_reg(inst.rd, return_pc, is_dise)
        self._jump(inst.target)

    def _h_jump_jsr_t(self, inst: Instruction, d, is_dise: bool) -> None:
        return_pc = self._jsr_return_pc()
        if d.fast_regs:
            self.regs[inst.rd] = return_pc
        else:
            self._write_reg(inst.rd, return_pc, is_dise)
        self.timing.call(self.pc, return_pc)
        self._jump(inst.target)

    def _h_jump_ret_f(self, inst: Instruction, d, is_dise: bool) -> None:
        target = (self.regs[inst.rs1] if d.fast_regs
                  else self._read_reg(inst.rs1, is_dise))
        self._jump(target)

    def _h_jump_ret_t(self, inst: Instruction, d, is_dise: bool) -> None:
        target = (self.regs[inst.rs1] if d.fast_regs
                  else self._read_reg(inst.rs1, is_dise))
        self.timing.return_(self.pc, target)
        self._jump(target)

    def _h_jump_jmp_f(self, inst: Instruction, d, is_dise: bool) -> None:
        target = (self.regs[inst.rs1] if d.fast_regs
                  else self._read_reg(inst.rs1, is_dise))
        self._jump(target)

    def _h_jump_jmp_t(self, inst: Instruction, d, is_dise: bool) -> None:
        target = (self.regs[inst.rs1] if d.fast_regs
                  else self._read_reg(inst.rs1, is_dise))
        self.timing.indirect_jump(self.pc, target)
        self._jump(target)

    def _h_trap(self, inst: Instruction, d, is_dise: bool) -> None:
        self._deliver_explicit_trap(is_dise)
        self._advance()

    def _h_ctrap(self, inst: Instruction, d, is_dise: bool) -> None:
        value = (self.regs[inst.rs1] if d.fast_regs
                 else self._read_reg(inst.rs1, is_dise))
        if value != 0:
            self._deliver_explicit_trap(is_dise)
        self._advance()

    def _h_dise_branch_f(self, inst: Instruction, d, is_dise: bool) -> None:
        expansion = self._expansion
        if expansion is None:
            raise SimulationError("DISE branch outside a replacement "
                                  f"sequence at pc={self.pc:#x}")
        opcode = inst.opcode
        if opcode is Opcode.D_BR:
            taken = True
        else:
            value = self._read_reg(inst.rs1, True)
            taken = (value == 0) if opcode is Opcode.D_BEQ else (value != 0)
        if not taken:
            self._advance()
            return
        self.stats.dise_branch_flushes += 1
        self._exp_index += 1 + inst.imm
        if self._exp_index >= len(expansion):
            self._expansion = None
            self.pc = self._trigger_pc + INSTRUCTION_BYTES

    def _h_dise_branch_t(self, inst: Instruction, d, is_dise: bool) -> None:
        expansion = self._expansion
        if expansion is None:
            raise SimulationError("DISE branch outside a replacement "
                                  f"sequence at pc={self.pc:#x}")
        opcode = inst.opcode
        if opcode is Opcode.D_BR:
            taken = True
        else:
            value = self._read_reg(inst.rs1, True)
            taken = (value == 0) if opcode is Opcode.D_BEQ else (value != 0)
        if not taken:
            self._advance()
            return
        self.stats.dise_branch_flushes += 1
        self.timing.dise_branch_taken()
        self._exp_index += 1 + inst.imm
        if self._exp_index >= len(expansion):
            self._expansion = None
            self.pc = self._trigger_pc + INSTRUCTION_BYTES

    def _h_dise_call_f(self, inst: Instruction, d, is_dise: bool) -> None:
        if (inst.opcode is Opcode.D_CCALL
                and self._read_reg(inst.rs1, True) == 0):
            self._advance()
            return
        if self._expansion is None:
            raise SimulationError("DISE call outside a replacement "
                                  f"sequence at pc={self.pc:#x}")
        self._dise_return = (self._trigger_pc, self._expansion,
                             self._exp_index + 1)
        self._in_dise_function = True
        self._expansion = None
        self.pc = inst.target

    def _h_dise_call_t(self, inst: Instruction, d, is_dise: bool) -> None:
        if (inst.opcode is Opcode.D_CCALL
                and self._read_reg(inst.rs1, True) == 0):
            self._advance()
            return
        if self._expansion is None:
            raise SimulationError("DISE call outside a replacement "
                                  f"sequence at pc={self.pc:#x}")
        self._dise_return = (self._trigger_pc, self._expansion,
                             self._exp_index + 1)
        self._in_dise_function = True
        self._expansion = None
        suppressed = self.timing.dise_call()
        if not suppressed:
            self.stats.dise_call_flushes += 1
        self.pc = inst.target

    def _h_dise_ret_f(self, inst: Instruction, d, is_dise: bool) -> None:
        if not self._in_dise_function or self._dise_return is None:
            raise SimulationError(
                f"d_ret outside a DISE-called function at pc={self.pc:#x}")
        trigger_pc, expansion, resume = self._dise_return
        self._dise_return = None
        self._in_dise_function = False
        if resume >= len(expansion):
            self._expansion = None
            self.pc = trigger_pc + INSTRUCTION_BYTES
        else:
            self._expansion = expansion
            self._exp_index = resume
            self._trigger_pc = trigger_pc

    def _h_dise_ret_t(self, inst: Instruction, d, is_dise: bool) -> None:
        if not self._in_dise_function or self._dise_return is None:
            raise SimulationError(
                f"d_ret outside a DISE-called function at pc={self.pc:#x}")
        trigger_pc, expansion, resume = self._dise_return
        self._dise_return = None
        self._in_dise_function = False
        timing = self.timing
        timing.dise_return()
        self.stats.dise_call_flushes += 0 if timing.multithreaded else 1
        if resume >= len(expansion):
            self._expansion = None
            self.pc = trigger_pc + INSTRUCTION_BYTES
        else:
            self._expansion = expansion
            self._exp_index = resume
            self._trigger_pc = trigger_pc

    def _h_dise_move(self, inst: Instruction, d, is_dise: bool) -> None:
        if not self._in_dise_function:
            raise SimulationError(
                f"{inst.info.mnemonic} outside a DISE-called function "
                f"at pc={self.pc:#x}")
        if inst.opcode is Opcode.D_MFR:
            self._write_reg(inst.rd, self.dise_regs.read(inst.imm), False)
        else:  # D_MTR
            self.dise_regs.write(inst.imm, self._read_reg(inst.rs1, False))
        self._advance()

    def _h_nop(self, inst: Instruction, d, is_dise: bool) -> None:
        self._advance()

    def _h_halt(self, inst: Instruction, d, is_dise: bool) -> None:
        self.halted = True

    def _h_codeword(self, inst: Instruction, d, is_dise: bool) -> None:
        raise SimulationError(
            f"codeword {inst.imm} executed without a matching DISE "
            f"production at pc={self.pc:#x}")

    # -- kernel traps (syscall / eret / timer) -------------------------------

    def _enter_trap(self, cause: int, epc: int, value: int) -> None:
        """Architectural trap entry: latch cause/epc/value, go kernel.

        With a guest trap vector installed, fetch redirects there (the
        run continues inside the guest handler until ``eret``); without
        one the cause is held pending for the host.
        """
        self.trap_cause = cause
        self.trap_epc = epc
        self.trap_value = value
        self.kernel_mode = True
        if self.trap_vector:
            if self.timing is not None:
                self.timing.flush()
            self._jump(self.trap_vector)
        else:
            self.pending_trap = cause

    def _h_syscall(self, inst: Instruction, d, is_dise: bool) -> None:
        num = self.regs[1]
        self._advance()
        if self._kernel is not None or self.trap_vector:
            # epc names the instruction after the syscall, so eret (or
            # the kernel's resume) continues past it.
            self._enter_trap(CAUSE_SYSCALL, self.pc, num)
            if self.pending_trap is not None:
                raise _TrapPending
            return
        # Standalone machine, no handler: emulate the host OS inline so
        # single-process programs using syscalls run (and conform)
        # without a kernel.  pids start at 1, matching a single-process
        # kernel, so the two execution modes agree architecturally.
        if num == SYS_GETPID:
            self.regs[1] = 1
        elif num == SYS_EXIT:
            self.halted = True

    def _h_eret_f(self, inst: Instruction, d, is_dise: bool) -> None:
        if not self.kernel_mode:
            raise SimulationError(f"eret in user mode at pc={self.pc:#x}")
        self.kernel_mode = False
        self._jump(self.trap_epc)

    def _h_eret_t(self, inst: Instruction, d, is_dise: bool) -> None:
        if not self.kernel_mode:
            raise SimulationError(f"eret in user mode at pc={self.pc:#x}")
        self.kernel_mode = False
        self.timing.flush()
        self._jump(self.trap_epc)

    # -- legacy interpreter ------------------------------------------------------
    #
    # The pre-dispatch-table interpreter, preserved verbatim (modulo the
    # interactive-stop and trap-context bugfixes, which apply to both
    # paths) behind ``MachineConfig.legacy_interpreter``.  The
    # differential suite runs it against the dispatch table to prove the
    # rewrite is bit-identical; remove it once that guarantee has baked.

    def _run_legacy(self, limit: int) -> None:
        stats = self.stats
        timing = self.timing
        regs = self.regs
        memory = self.memory
        pagetable = self.pagetable
        engine = self.dise_engine
        text = self._text
        text_base = self._text_base
        free_nops = self.config.free_nops

        while not self.halted:
            if limit >= 0 and stats.app_instructions >= limit:
                break
            if self.stopped_at_user:
                break

            expansion = self._expansion
            if expansion is not None:
                inst = expansion[self._exp_index]
                is_dise = True
            else:
                pc = self.pc
                index = (pc - text_base) >> 2
                if index < 0 or index >= len(text):
                    raise SimulationError(f"fetch outside text: pc={pc:#x}")
                inst = text[index]
                if self.breakpoint_registers or self.single_step:
                    if not self._fetch_stage_traps(pc):
                        break
                if timing is not None:
                    timing.fetch(pc)
                if (engine.enabled and engine._productions
                        and not self._in_dise_function):
                    seq = engine.expand(inst, pc)
                    if seq is not None:
                        stats.dise_expansions += 1
                        self._expansion = expansion = seq
                        self._exp_index = 0
                        self._trigger_pc = pc
                        self._expansion_did_store = False
                        inst = seq[0]
                        is_dise = True
                    else:
                        is_dise = False
                else:
                    is_dise = False

            self._execute(inst, is_dise, stats, timing, regs, memory,
                          pagetable, free_nops)

    # pylint: disable=too-many-branches,too-many-statements
    def _execute(self, inst: Instruction, is_dise: bool, stats, timing,
                 regs, memory, pagetable, free_nops: bool) -> None:
        """Execute one instruction and update fetch state (legacy path)."""
        observer = self.instruction_observer
        if observer is not None:
            observer(self.pc, self._exp_index if is_dise else 0, inst,
                     is_dise)
        opclass = inst.info.opclass
        opcode = inst.opcode

        # -- account the committed instruction -----------------------------
        if opclass is OpClass.NOP and free_nops:
            stats.nops_elided += 1
            self._advance()
            return
        if is_dise:
            if self._exp_index == 0:
                stats.app_instructions += 1
            else:
                stats.dise_instructions += 1
        elif self._in_dise_function:
            stats.function_instructions += 1
        elif self.instrumentation_pcs and self.pc in self.instrumentation_pcs:
            stats.dise_instructions += 1
        else:
            stats.app_instructions += 1
        if timing is not None:
            timing.commit()

        dise_ok = is_dise  # may DISE registers be named as operands?

        if opclass is OpClass.ALU:
            if inst.info.format is Format.MEMORY:  # lda
                base = self._read_reg(inst.rs1, dise_ok)
                self._write_reg(inst.rd, (base + inst.imm) & MASK64, dise_ok)
            elif opcode is Opcode.MOV:
                self._write_reg(inst.rd, self._read_reg(inst.rs1, dise_ok),
                                dise_ok)
            else:
                a = self._read_reg(inst.rs1, dise_ok)
                b = (self._read_reg(inst.rs2, dise_ok)
                     if inst.rs2 is not None else inst.imm & MASK64)
                self._write_reg(inst.rd, alu_result(opcode, a, b), dise_ok)
            self._advance()
            return

        if opclass is OpClass.LOAD:
            base = self._read_reg(inst.rs1, dise_ok)
            ea = (base + inst.imm) & MASK64
            size = inst.info.mem_size
            value = memory.read_int(ea, size)
            self._write_reg(inst.rd, value, dise_ok)
            stats.loads += 1
            if timing is not None:
                timing.load(ea)
            self._advance()
            return

        if opclass is OpClass.STORE:
            base = self._read_reg(inst.rs1, dise_ok)
            ea = (base + inst.imm) & MASK64
            size = inst.info.mem_size
            value = self._read_reg(inst.rd, dise_ok)
            self.last_store_addr = ea
            self.last_store_size = size
            self.last_store_value = value
            if is_dise:
                self._expansion_did_store = True
            stats.stores += 1
            if timing is not None:
                timing.store(ea)
            observer = self.store_observer
            if observer is not None:
                observer(ea, size, value, memory.read_int(ea, size))
            faulted = pagetable.any_protected and pagetable.check_store(ea, size)
            memory.write_int(ea, size, value)
            if ea < self._text_end and ea + size > self._text_base:
                self._note_text_store(ea, size)
            if faulted:
                stats.page_fault_traps += 1
                self.deliver_trap(TrapEvent(TrapKind.PAGE_FAULT, self.pc,
                                            ea, size, value))
            if self.hw_watch_ranges:
                end = ea + size
                for lo, hi in self.hw_watch_ranges:
                    if ea < hi and end > lo:
                        self.deliver_trap(TrapEvent(
                            TrapKind.HW_WATCHPOINT, self.pc, ea, size, value))
                        break
            self._advance()
            return

        if opclass is OpClass.BRANCH:
            value = self._read_reg(inst.rs1, dise_ok)
            taken = branch_taken(opcode, value)
            stats.branches += 1
            if timing is not None:
                # Decorrelate predictor indices of expansion-internal
                # branches from the trigger's own PC.
                branch_pc = self.pc + (self._exp_index << 20 if is_dise else 0)
                timing.conditional_branch(branch_pc, taken)
            if taken:
                stats.taken_branches += 1
                self._jump(inst.target)
            else:
                self._advance()
            return

        if opclass is OpClass.JUMP:
            self._execute_jump(inst, opcode, dise_ok, timing)
            return

        if opclass is OpClass.TRAP:
            if opcode is Opcode.CTRAP:
                if self._read_reg(inst.rs1, dise_ok) == 0:
                    self._advance()
                    return
            self._deliver_explicit_trap(is_dise)
            self._advance()
            return

        if opclass is OpClass.DISE_BRANCH:
            self._execute_dise_branch(inst, opcode, stats, timing)
            return

        if opclass is OpClass.DISE_CALL:
            taken = True
            if opcode is Opcode.D_CCALL:
                taken = self._read_reg(inst.rs1, True) != 0
            if not taken:
                self._advance()
                return
            if self._expansion is None:
                raise SimulationError("DISE call outside a replacement "
                                      f"sequence at pc={self.pc:#x}")
            self._dise_return = (self._trigger_pc, self._expansion,
                                 self._exp_index + 1)
            self._in_dise_function = True
            self._expansion = None
            suppressed = timing.dise_call() if timing is not None else True
            if not suppressed:
                stats.dise_call_flushes += 1
            self.pc = inst.target
            return

        if opclass is OpClass.DISE_RET:
            if not self._in_dise_function or self._dise_return is None:
                raise SimulationError(
                    f"d_ret outside a DISE-called function at pc={self.pc:#x}")
            trigger_pc, expansion, resume = self._dise_return
            self._dise_return = None
            self._in_dise_function = False
            if timing is not None:
                timing.dise_return()
                stats.dise_call_flushes += 0 if timing.multithreaded else 1
            if resume >= len(expansion):
                self._expansion = None
                self.pc = trigger_pc + INSTRUCTION_BYTES
            else:
                self._expansion = expansion
                self._exp_index = resume
                self._trigger_pc = trigger_pc
            return

        if opclass is OpClass.DISE_MOVE:
            if not self._in_dise_function:
                raise SimulationError(
                    f"{inst.info.mnemonic} outside a DISE-called function "
                    f"at pc={self.pc:#x}")
            if opcode is Opcode.D_MFR:
                self._write_reg(inst.rd, self.dise_regs.read(inst.imm), False)
            else:  # D_MTR
                self.dise_regs.write(inst.imm,
                                     self._read_reg(inst.rs1, False))
            self._advance()
            return

        if opclass is OpClass.NOP:
            self._advance()
            return

        if opclass is OpClass.HALT:
            self.halted = True
            return

        if opclass is OpClass.CODEWORD:
            raise SimulationError(
                f"codeword {inst.imm} executed without a matching DISE "
                f"production at pc={self.pc:#x}")

        if opclass is OpClass.SYSCALL:
            self._h_syscall(inst, None, is_dise)
            return

        if opclass is OpClass.ERET:
            if not self.kernel_mode:
                raise SimulationError(
                    f"eret in user mode at pc={self.pc:#x}")
            self.kernel_mode = False
            if timing is not None:
                timing.flush()
            self._jump(self.trap_epc)
            return

        raise SimulationError(f"unhandled opcode {opcode.name}")

    # -- store context for trap handlers -------------------------------------

    last_store_addr: int = 0
    last_store_size: int = 0
    last_store_value: int = 0

    # -- control-flow helpers --------------------------------------------------

    def _advance(self) -> None:
        if self._expansion is not None:
            self._exp_index += 1
            if self._exp_index >= len(self._expansion):
                self._expansion = None
                self.pc = self._trigger_pc + INSTRUCTION_BYTES
        else:
            self.pc += INSTRUCTION_BYTES

    def _jump(self, target: int) -> None:
        """Conventional control transfer: <newPC : 0>."""
        self._expansion = None
        self.pc = target

    def _execute_jump(self, inst: Instruction, opcode: Opcode,
                      dise_ok: bool, timing) -> None:
        if opcode is Opcode.BR:
            if timing is not None:
                timing.direct_jump()
            self._jump(inst.target)
            return
        if opcode is Opcode.JSR:
            if self._expansion is not None:
                return_pc = self._trigger_pc + INSTRUCTION_BYTES
            else:
                return_pc = self.pc + INSTRUCTION_BYTES
            self._write_reg(inst.rd, return_pc, dise_ok)
            if timing is not None:
                timing.call(self.pc, return_pc)
            self._jump(inst.target)
            return
        target = self._read_reg(inst.rs1, dise_ok)
        if opcode is Opcode.RET:
            if timing is not None:
                timing.return_(self.pc, target)
            self._jump(target)
            return
        # JMP
        if timing is not None:
            timing.indirect_jump(self.pc, target)
        self._jump(target)

    def _execute_dise_branch(self, inst: Instruction, opcode: Opcode,
                             stats, timing) -> None:
        if self._expansion is None:
            raise SimulationError("DISE branch outside a replacement "
                                  f"sequence at pc={self.pc:#x}")
        if opcode is Opcode.D_BR:
            taken = True
        else:
            value = self._read_reg(inst.rs1, True)
            taken = (value == 0) if opcode is Opcode.D_BEQ else (value != 0)
        if not taken:
            self._advance()
            return
        stats.dise_branch_flushes += 1
        if timing is not None:
            timing.dise_branch_taken()
        self._exp_index += 1 + inst.imm
        if self._exp_index >= len(self._expansion):
            self._expansion = None
            self.pc = self._trigger_pc + INSTRUCTION_BYTES


def __getattr__(name: str):
    if name == "RunResult":
        import warnings

        warnings.warn(
            "repro.cpu.machine.RunResult was renamed MachineRun; "
            "repro.RunResult is now the unified result type "
            "(repro.results.RunResult)", DeprecationWarning, stacklevel=2)
        return MachineRun
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
