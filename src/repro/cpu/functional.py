"""Pure instruction semantics: ALU operations and branch conditions.

These helpers are side-effect free so they can be unit- and
property-tested in isolation; :class:`repro.cpu.machine.Machine` applies
them to architectural state.  All values are 64-bit unsigned integers;
signed interpretations are applied where an opcode demands them.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.opcodes import Opcode

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer to its 64-bit unsigned representation."""
    return value & MASK64


# Per-opcode operator tables.  The interpreter's decode cache binds the
# function once per instruction, replacing a 15-way if/elif chain with a
# direct call on the hot path.
ALU_FUNCS: dict[Opcode, "callable"] = {
    Opcode.ADDQ: lambda a, b: (a + b) & MASK64,
    Opcode.SUBQ: lambda a, b: (a - b) & MASK64,
    Opcode.MULQ: lambda a, b: (a * b) & MASK64,
    Opcode.AND: lambda a, b: a & b,
    Opcode.BIS: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.BIC: lambda a, b: a & ~b & MASK64,
    Opcode.SLL: lambda a, b: (a << (b & 63)) & MASK64,
    Opcode.SRL: lambda a, b: (a >> (b & 63)) & MASK64,
    Opcode.SRA: lambda a, b: to_unsigned(to_signed(a) >> (b & 63)),
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPLT: lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    Opcode.CMPLE: lambda a, b: 1 if to_signed(a) <= to_signed(b) else 0,
    Opcode.CMPULT: lambda a, b: 1 if a < b else 0,
    Opcode.CMPULE: lambda a, b: 1 if a <= b else 0,
}

BRANCH_FUNCS: dict[Opcode, "callable"] = {
    Opcode.BEQ: lambda value: value == 0,
    Opcode.BNE: lambda value: value != 0,
    Opcode.BLT: lambda value: to_signed(value) < 0,
    Opcode.BGE: lambda value: to_signed(value) >= 0,
    Opcode.BLE: lambda value: to_signed(value) <= 0,
    Opcode.BGT: lambda value: to_signed(value) > 0,
}


def alu_result(opcode: Opcode, a: int, b: int) -> int:
    """Compute ``a OP b`` for operate-format opcodes (64-bit wrap)."""
    func = ALU_FUNCS.get(opcode)
    if func is None:
        raise SimulationError(f"{opcode.name} is not an ALU opcode")
    return func(a, b)


def branch_taken(opcode: Opcode, value: int) -> bool:
    """Evaluate a conditional branch on its source register value."""
    func = BRANCH_FUNCS.get(opcode)
    if func is None:
        raise SimulationError(f"{opcode.name} is not a conditional branch")
    return func(value)
