"""Pure instruction semantics: ALU operations and branch conditions.

These helpers are side-effect free so they can be unit- and
property-tested in isolation; :class:`repro.cpu.machine.Machine` applies
them to architectural state.  All values are 64-bit unsigned integers;
signed interpretations are applied where an opcode demands them.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.opcodes import Opcode

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer to its 64-bit unsigned representation."""
    return value & MASK64


def alu_result(opcode: Opcode, a: int, b: int) -> int:
    """Compute ``a OP b`` for operate-format opcodes (64-bit wrap)."""
    if opcode is Opcode.ADDQ:
        return (a + b) & MASK64
    if opcode is Opcode.SUBQ:
        return (a - b) & MASK64
    if opcode is Opcode.MULQ:
        return (a * b) & MASK64
    if opcode is Opcode.AND:
        return a & b
    if opcode is Opcode.BIS:
        return a | b
    if opcode is Opcode.XOR:
        return a ^ b
    if opcode is Opcode.BIC:
        return a & ~b & MASK64
    if opcode is Opcode.SLL:
        return (a << (b & 63)) & MASK64
    if opcode is Opcode.SRL:
        return (a >> (b & 63)) & MASK64
    if opcode is Opcode.SRA:
        return to_unsigned(to_signed(a) >> (b & 63))
    if opcode is Opcode.CMPEQ:
        return 1 if a == b else 0
    if opcode is Opcode.CMPLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if opcode is Opcode.CMPLE:
        return 1 if to_signed(a) <= to_signed(b) else 0
    if opcode is Opcode.CMPULT:
        return 1 if a < b else 0
    if opcode is Opcode.CMPULE:
        return 1 if a <= b else 0
    raise SimulationError(f"{opcode.name} is not an ALU opcode")


def branch_taken(opcode: Opcode, value: int) -> bool:
    """Evaluate a conditional branch on its source register value."""
    if opcode is Opcode.BEQ:
        return value == 0
    if opcode is Opcode.BNE:
        return value != 0
    signed = to_signed(value)
    if opcode is Opcode.BLT:
        return signed < 0
    if opcode is Opcode.BGE:
        return signed >= 0
    if opcode is Opcode.BLE:
        return signed <= 0
    if opcode is Opcode.BGT:
        return signed > 0
    raise SimulationError(f"{opcode.name} is not a conditional branch")
