"""Sparse, paged, byte-addressable main memory.

Storage is allocated lazily in fixed-size pages (bytearrays) so that a
64-bit address space costs only what the program touches.  Accesses that
cross a page boundary take a slower correct path; the common aligned case
is a direct slice of one page.

Integers are stored little-endian.  Loads return unsigned values; the
functional executor applies sign interpretation where an opcode requires
it (comparisons use two's-complement views of the 64-bit value).

Snapshots are copy-on-write at page granularity: :meth:`snapshot` is a
shallow copy of the page directory plus a "frozen" marking on every
resident page.  A frozen page is shared between the live memory and any
number of snapshots; the first store to it clones the page and unfreezes
the clone.  A checkpoint therefore costs O(resident page *count*) to
take and O(dirty pages) in bytes, never O(footprint).
"""

from __future__ import annotations

import hashlib

from repro.errors import MemoryError_

PAGE_BYTES = 4096
_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_BYTES - 1

MASK64 = (1 << 64) - 1

_ZERO_PAGE = bytes(PAGE_BYTES)


class MainMemory:
    """Byte-addressable memory backed by lazily allocated pages."""

    __slots__ = ("_pages", "_frozen")

    def __init__(self):
        self._pages: dict[int, bytearray] = {}
        # Pages shared with at least one snapshot; cloned before mutation.
        self._frozen: set[int] = set()

    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_BYTES)
            self._pages[page_number] = page
        return page

    def _writable_page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_BYTES)
            self._pages[page_number] = page
            return page
        if page_number in self._frozen:
            page = bytearray(page)
            self._pages[page_number] = page
            self._frozen.discard(page_number)
        return page

    # -- integer access ----------------------------------------------------

    def read_int(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned integer."""
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_BYTES:
            page = self._page(address >> _PAGE_SHIFT)
            return int.from_bytes(page[offset:offset + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write_int(self, address: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``address``."""
        value &= (1 << (8 * size)) - 1
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_BYTES:
            page = self._writable_page(address >> _PAGE_SHIFT)
            page[offset:offset + size] = value.to_bytes(size, "little")
            return
        self.write_bytes(address, value.to_bytes(size, "little"))

    # -- bulk access ---------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes starting at ``address``."""
        if length < 0:
            raise MemoryError_(f"negative read length {length}")
        chunks = []
        remaining = length
        cursor = address
        while remaining:
            offset = cursor & _PAGE_MASK
            take = min(remaining, PAGE_BYTES - offset)
            page = self._page(cursor >> _PAGE_SHIFT)
            chunks.append(bytes(page[offset:offset + take]))
            cursor += take
            remaining -= take
        return b"".join(chunks)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write raw ``data`` starting at ``address``."""
        cursor = address
        view = memoryview(data)
        while view:
            offset = cursor & _PAGE_MASK
            take = min(len(view), PAGE_BYTES - offset)
            page = self._writable_page(cursor >> _PAGE_SHIFT)
            page[offset:offset + take] = view[:take]
            cursor += take
            view = view[take:]

    # -- snapshots (copy-on-write) --------------------------------------------

    def snapshot(self) -> dict[int, bytearray]:
        """Capture memory as a shallow page-directory copy.

        Every resident page is marked frozen; both the snapshot and the
        live memory share the page objects until a store clones one.
        The blob is opaque to callers and only meaningful for
        :meth:`restore` on a memory in the same process.
        """
        self._frozen = set(self._pages)
        return dict(self._pages)

    def restore(self, blob: dict[int, bytearray]) -> None:
        """Reset memory to a previously captured :meth:`snapshot`.

        The snapshot stays valid (restoring re-freezes the shared
        pages), so a checkpoint can be restored any number of times.
        """
        self._pages = dict(blob)
        self._frozen = set(blob)

    def state_fingerprint(self) -> str:
        """Content hash of memory, canonical across residency layouts.

        All-zero pages hash identically to absent pages, so a page that
        was lazily allocated but never written does not perturb the
        fingerprint.
        """
        digest = hashlib.sha256()
        for page_number in sorted(self._pages):
            page = self._pages[page_number]
            if page == _ZERO_PAGE:
                continue
            digest.update(page_number.to_bytes(8, "little", signed=True))
            digest.update(page)
        return digest.hexdigest()

    @property
    def frozen_pages(self) -> int:
        """Number of pages currently shared with a snapshot."""
        return len(self._frozen)

    # -- introspection ---------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages that have been touched."""
        return len(self._pages)

    def clear(self) -> None:
        """Release every resident page."""
        self._pages.clear()
        self._frozen.clear()
