"""Sparse, paged, byte-addressable main memory.

Storage is allocated lazily in fixed-size pages (bytearrays) so that a
64-bit address space costs only what the program touches.  Accesses that
cross a page boundary take a slower correct path; the common aligned case
is a direct slice of one page.

Integers are stored little-endian.  Loads return unsigned values; the
functional executor applies sign interpretation where an opcode requires
it (comparisons use two's-complement views of the 64-bit value).
"""

from __future__ import annotations

from repro.errors import MemoryError_

PAGE_BYTES = 4096
_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_BYTES - 1

MASK64 = (1 << 64) - 1


class MainMemory:
    """Byte-addressable memory backed by lazily allocated pages."""

    __slots__ = ("_pages",)

    def __init__(self):
        self._pages: dict[int, bytearray] = {}

    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_BYTES)
            self._pages[page_number] = page
        return page

    # -- integer access ----------------------------------------------------

    def read_int(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned integer."""
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_BYTES:
            page = self._page(address >> _PAGE_SHIFT)
            return int.from_bytes(page[offset:offset + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write_int(self, address: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``address``."""
        value &= (1 << (8 * size)) - 1
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_BYTES:
            page = self._page(address >> _PAGE_SHIFT)
            page[offset:offset + size] = value.to_bytes(size, "little")
            return
        self.write_bytes(address, value.to_bytes(size, "little"))

    # -- bulk access ---------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes starting at ``address``."""
        if length < 0:
            raise MemoryError_(f"negative read length {length}")
        chunks = []
        remaining = length
        cursor = address
        while remaining:
            offset = cursor & _PAGE_MASK
            take = min(remaining, PAGE_BYTES - offset)
            page = self._page(cursor >> _PAGE_SHIFT)
            chunks.append(bytes(page[offset:offset + take]))
            cursor += take
            remaining -= take
        return b"".join(chunks)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write raw ``data`` starting at ``address``."""
        cursor = address
        view = memoryview(data)
        while view:
            offset = cursor & _PAGE_MASK
            take = min(len(view), PAGE_BYTES - offset)
            page = self._page(cursor >> _PAGE_SHIFT)
            page[offset:offset + take] = view[:take]
            cursor += take
            view = view[take:]

    # -- introspection ---------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages that have been touched."""
        return len(self._pages)

    def clear(self) -> None:
        """Release every resident page."""
        self._pages.clear()
