"""Page-granularity protection, the substrate for VM watchpoints.

The virtual-memory watchpoint implementation (paper Section 2, citing
Appel & Li) removes write permission from the pages holding watched data;
every store to such a page then faults into the debugger.  This module
provides exactly that interface:

* :meth:`PageTable.mprotect` changes page permissions over a range,
* :meth:`PageTable.check_store` is consulted by the machine on every
  store and reports whether the access faults.

All pages are implicitly mapped read+write; only protection state is
tracked.  Fault *delivery* (the expensive debugger transition) is the
machine's job — the page table only detects the condition, mirroring the
hardware/OS split.
"""

from __future__ import annotations

from repro.config import MachineConfig

PAGE_READ = 1
PAGE_WRITE = 2


class PageTable:
    """Tracks per-page protection bits.

    For speed the common case (no protections installed at all) is a
    single attribute test; the simulator only pays a dict lookup per
    store once the first page is protected.
    """

    __slots__ = ("page_bytes", "_page_shift", "_protections", "any_protected")

    def __init__(self, page_bytes: int = 4096):
        if page_bytes & (page_bytes - 1):
            raise ValueError(f"page size {page_bytes} is not a power of two")
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1
        # page number -> protection bits; absent means READ|WRITE.
        self._protections: dict[int, int] = {}
        self.any_protected = False

    @classmethod
    def from_config(cls, config: MachineConfig) -> "PageTable":
        return cls(config.page_bytes)

    # -- protection manipulation (the debugger's mprotect interface) --------

    def page_number(self, address: int) -> int:
        """Page number containing ``address``."""
        return address >> self._page_shift

    def pages_in_range(self, address: int, length: int) -> range:
        """Page numbers covering [address, address+length)."""
        first = self.page_number(address)
        last = self.page_number(address + max(length, 1) - 1)
        return range(first, last + 1)

    def mprotect(self, address: int, length: int, protection: int) -> None:
        """Set protection bits for all pages covering the range."""
        for page in self.pages_in_range(address, length):
            if protection == (PAGE_READ | PAGE_WRITE):
                self._protections.pop(page, None)
            else:
                self._protections[page] = protection
        self.any_protected = bool(self._protections)

    def protect_page(self, page: int, protection: int) -> None:
        """Set protection bits for a single page."""
        if protection == (PAGE_READ | PAGE_WRITE):
            self._protections.pop(page, None)
        else:
            self._protections[page] = protection
        self.any_protected = bool(self._protections)

    def protection_of(self, address: int) -> int:
        """Current protection bits of the page holding ``address``."""
        return self._protections.get(self.page_number(address),
                                     PAGE_READ | PAGE_WRITE)

    def clear(self) -> None:
        """Restore read+write on every page."""
        self._protections.clear()
        self.any_protected = False

    @property
    def protected_pages(self) -> frozenset[int]:
        return frozenset(self._protections)

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> dict[int, int]:
        """Capture the protection map."""
        return dict(self._protections)

    def restore(self, blob: dict[int, int]) -> None:
        """Reset protections to a previous :meth:`snapshot`."""
        self._protections = dict(blob)
        self.any_protected = bool(self._protections)

    # -- fault checks (consulted by the machine) ------------------------------

    def check_store(self, address: int, size: int) -> bool:
        """Return True if a ``size``-byte store at ``address`` faults."""
        if not self.any_protected:
            return False
        first = address >> self._page_shift
        last = (address + size - 1) >> self._page_shift
        protections = self._protections
        for page in range(first, last + 1):
            bits = protections.get(page)
            if bits is not None and not (bits & PAGE_WRITE):
                return True
        return False

    def check_load(self, address: int, size: int) -> bool:
        """Return True if a ``size``-byte load at ``address`` faults."""
        if not self.any_protected:
            return False
        first = address >> self._page_shift
        last = (address + size - 1) >> self._page_shift
        protections = self._protections
        for page in range(first, last + 1):
            bits = protections.get(page)
            if bits is not None and not (bits & PAGE_READ):
                return True
        return False
