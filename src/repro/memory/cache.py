"""Set-associative caches and the two-level hierarchy.

The timing model charges memory-access latency according to where an
access hits: L1 (I$ or D$), the shared L2, or main memory.  Caches use
true LRU within a set (associativities here are 2 and 4, so the linear
scan is cheap).

Only tags are modeled — the simulator's functional state lives in
:class:`repro.memory.main_memory.MainMemory`; caches exist purely to
classify accesses for the timing model.  This is sufficient because the
paper's cache-related effects (binary rewriting's instruction-cache
bloat, load-port/D$ contention of expression-evaluating replacement
sequences) are hit/miss phenomena, not coherence phenomena.
"""

from __future__ import annotations

from enum import IntEnum

from repro.config import CacheConfig, MachineConfig


class AccessLevel(IntEnum):
    """Where a memory access was satisfied."""

    L1 = 0
    L2 = 1
    MEMORY = 2


class SetAssociativeCache:
    """A tag-only set-associative cache with LRU replacement."""

    __slots__ = ("name", "config", "_sets", "_set_mask", "_line_shift",
                 "hits", "misses")

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.name = name
        self.config = config
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(
                f"{name}: number of sets {num_sets} is not a power of two")
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._set_mask = num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self.hits = 0
        self.misses = 0

    def line_of(self, address: int) -> int:
        """Line number containing ``address``."""
        return address >> self._line_shift

    def access(self, address: int) -> bool:
        """Probe the cache; fill on miss.  Returns True on hit."""
        line = address >> self._line_shift
        ways = self._sets[line & self._set_mask]
        if ways and ways[0] == line:  # MRU fast path
            self.hits += 1
            return True
        try:
            ways.remove(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.config.associativity:
                ways.pop()
            return False
        self.hits += 1
        ways.insert(0, line)
        return True

    def probe(self, address: int) -> bool:
        """Check residency without updating state (for tests/tools)."""
        line = address >> self._line_shift
        return line in self._sets[line & self._set_mask]

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        for ways in self._sets:
            ways.clear()
        self.hits = 0
        self.misses = 0

    def reset_counters(self) -> None:
        """Zero hit/miss counters without disturbing cache contents."""
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> tuple:
        """Capture cache contents and counters."""
        return ([list(ways) for ways in self._sets], self.hits, self.misses)

    def restore(self, blob: tuple) -> None:
        """Reset the cache to a previous :meth:`snapshot`."""
        sets, self.hits, self.misses = blob
        self._sets = [list(ways) for ways in sets]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class CacheHierarchy:
    """Split L1 I$/D$ over a shared L2.

    ``access_inst`` / ``access_data`` return the :class:`AccessLevel`
    where the access hit, which the timing model converts to latency.
    """

    __slots__ = ("l1i", "l1d", "l2")

    def __init__(self, config: MachineConfig):
        self.l1i = SetAssociativeCache(config.icache, "l1i")
        self.l1d = SetAssociativeCache(config.dcache, "l1d")
        self.l2 = SetAssociativeCache(config.l2, "l2")

    def access_inst(self, address: int) -> AccessLevel:
        """Instruction fetch: probe I$ then L2; returns the hit level."""
        if self.l1i.access(address):
            return AccessLevel.L1
        if self.l2.access(address):
            return AccessLevel.L2
        return AccessLevel.MEMORY

    def access_data(self, address: int) -> AccessLevel:
        """Data access: probe D$ then L2; returns the hit level."""
        if self.l1d.access(address):
            return AccessLevel.L1
        if self.l2.access(address):
            return AccessLevel.L2
        return AccessLevel.MEMORY

    def reset(self) -> None:
        """Empty all levels and zero all counters."""
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()

    def reset_counters(self) -> None:
        """Zero all counters, keeping contents (post-warm-up)."""
        self.l1i.reset_counters()
        self.l1d.reset_counters()
        self.l2.reset_counters()

    def snapshot(self) -> tuple:
        """Capture all three levels."""
        return (self.l1i.snapshot(), self.l1d.snapshot(), self.l2.snapshot())

    def restore(self, blob: tuple) -> None:
        """Reset all three levels to a previous :meth:`snapshot`."""
        self.l1i.restore(blob[0])
        self.l1d.restore(blob[1])
        self.l2.restore(blob[2])
