"""Memory-system substrates.

* :mod:`repro.memory.main_memory` -- sparse paged byte-addressable memory.
* :mod:`repro.memory.pagetable` -- page-granularity protection and fault
  delivery (the substrate for the virtual-memory watchpoint backend).
* :mod:`repro.memory.cache` -- set-associative caches and the two-level
  hierarchy used by the timing model.
* :mod:`repro.memory.tlb` -- translation lookaside buffers.
"""

from repro.memory.main_memory import MainMemory
from repro.memory.pagetable import PageTable, PAGE_READ, PAGE_WRITE
from repro.memory.cache import SetAssociativeCache, CacheHierarchy, AccessLevel
from repro.memory.tlb import Tlb

__all__ = [
    "MainMemory",
    "PageTable",
    "PAGE_READ",
    "PAGE_WRITE",
    "SetAssociativeCache",
    "CacheHierarchy",
    "AccessLevel",
    "Tlb",
]
