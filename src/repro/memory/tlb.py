"""Translation lookaside buffers.

The simulated machine has 64-entry 4-way instruction and data TLBs
(paper Section 5).  Like the caches, TLBs here are tag-only classifiers:
a miss charges a refill penalty in the timing model.  Translation itself
is identity (the simulator runs a single flat address space), which is
faithful to the paper's user-level SimpleScalar setup.
"""

from __future__ import annotations

from repro.config import TlbConfig


class Tlb:
    """A set-associative TLB with LRU replacement."""

    __slots__ = ("name", "config", "_sets", "_set_mask", "_page_shift",
                 "hits", "misses")

    def __init__(self, config: TlbConfig, name: str = "tlb"):
        self.name = name
        self.config = config
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(
                f"{name}: number of sets {num_sets} is not a power of two")
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._set_mask = num_sets - 1
        self._page_shift = config.page_bytes.bit_length() - 1
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Probe for the page of ``address``; fill on miss.  True on hit."""
        page = address >> self._page_shift
        ways = self._sets[page & self._set_mask]
        if ways and ways[0] == page:
            self.hits += 1
            return True
        try:
            ways.remove(page)
        except ValueError:
            self.misses += 1
            ways.insert(0, page)
            if len(ways) > self.config.associativity:
                ways.pop()
            return False
        self.hits += 1
        ways.insert(0, page)
        return True

    def reset(self) -> None:
        """Empty the TLB and zero the counters."""
        for ways in self._sets:
            ways.clear()
        self.hits = 0
        self.misses = 0

    def reset_counters(self) -> None:
        """Zero hit/miss counters without disturbing TLB contents."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Drop all translations, keeping the counters.

        This is a context switch, not a measurement reset: the incoming
        process re-misses its working set and those misses count.
        """
        for ways in self._sets:
            ways.clear()

    def snapshot(self) -> tuple:
        """Capture TLB contents and counters."""
        return ([list(ways) for ways in self._sets], self.hits, self.misses)

    def restore(self, blob: tuple) -> None:
        """Reset the TLB to a previous :meth:`snapshot`."""
        sets, self.hits, self.misses = blob
        self._sets = [list(ways) for ways in sets]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
