"""Differential fuzzing of the debugger backends and interpreters.

The paper's central claim is that its five watchpoint/breakpoint
implementations are *semantically identical* — they differ only in
overhead.  That makes the backends a free N-version oracle for each
other, and the dispatch-table/legacy interpreter split a second oracle
for the CPU core itself.  This package exploits both:

* :mod:`repro.fuzz.generator` — a seeded random-program generator,
  constrained to always-terminating, memory-bounded programs with
  tunable store/branch/load densities and a self-checking epilogue;
* :mod:`repro.fuzz.oracle` — runs one generated program undebugged on
  both interpreters and under every backend (on both interpreters),
  asserting identical final architectural state and identical
  canonical user-visible stop sequences;
* :mod:`repro.fuzz.shrinker` — minimizes a failing program spec to a
  smallest reproducing instruction list;
* :mod:`repro.fuzz.inject` — named fault injections (mutated stop
  conditions) used to prove the oracle actually catches bugs;
* :mod:`repro.fuzz.campaign` — a multi-iteration campaign that fans
  out over the parallel experiment engine and dumps failure artifacts;
* :mod:`repro.fuzz.cli` — the ``repro-fuzz`` command-line entry point;
* :mod:`repro.fuzz.golden` — golden-trace snapshots pinning canonical
  stop sequences of recorded seeds for regression testing.
"""

from repro.fuzz.generator import (GeneratorConfig, ProgramSpec, build_program,
                                  generate_spec)
from repro.fuzz.oracle import (OracleReport, Stop, StopRecorder,
                               run_differential)
from repro.fuzz.shrinker import shrink
from repro.fuzz.campaign import CampaignResult, run_campaign

__all__ = [
    "GeneratorConfig",
    "ProgramSpec",
    "build_program",
    "generate_spec",
    "OracleReport",
    "Stop",
    "StopRecorder",
    "run_differential",
    "shrink",
    "CampaignResult",
    "run_campaign",
]
