"""Greedy spec minimizer for failing fuzz programs.

Given a failing :class:`~repro.fuzz.generator.ProgramSpec` and a
predicate ("does this spec still fail?"), the shrinker applies
structure-aware reductions until none helps:

* collapse the outer loop to one pass and inner loops to none;
* drop the self-checking epilogue;
* keep only one debug point (trying each);
* delta-debug each block's body ops (chunked removal, halving chunks);
* drop empty blocks outright in watch mode (break mode keeps them —
  block labels are positional and breakpoints target them);
* drop variables and register initializers nothing references.

Reductions are only accepted when the reduced spec still fails, so the
result is failing by construction.  The rendered reproducer for an
injected single-backend bug typically lands well under 20 instructions.
"""

from __future__ import annotations

from copy import deepcopy
from typing import Callable, Optional

from repro.fuzz.generator import (Block, ProgramSpec, block_label,
                                  build_program)

Predicate = Callable[[ProgramSpec], bool]


class _Budget:
    """Caps the number of predicate evaluations (oracle runs)."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit

    def check(self, predicate: Predicate, spec: ProgramSpec) -> bool:
        if self.spent():
            return False
        self.used += 1
        return predicate(spec)


def shrink(spec: ProgramSpec, is_failing: Predicate,
           max_checks: int = 400) -> ProgramSpec:
    """Return a minimal (by these reductions) still-failing spec.

    ``is_failing`` must be True for ``spec`` itself; the returned spec
    also satisfies it.  At most ``max_checks`` predicate evaluations are
    spent; whatever was reached by then is returned.
    """
    budget = _Budget(max_checks)
    current = deepcopy(spec)
    improved = True
    while improved and not budget.spent():
        improved = False
        for reducer in (_reduce_iterations, _reduce_inner_loops,
                        _drop_epilogue, _reduce_points, _reduce_ops,
                        _drop_empty_blocks, _drop_unused_vars,
                        _drop_unused_regs, _drop_conditions):
            candidate = reducer(current, is_failing, budget)
            if candidate is not None:
                current = candidate
                improved = True
    return current


def instruction_count(spec: ProgramSpec) -> int:
    """Static length of the rendered reproducer."""
    return len(build_program(spec).instructions)


# -- individual reductions ---------------------------------------------------
# Each returns a smaller still-failing spec, or None if no reduction held.


def _reduce_iterations(spec, is_failing, budget) -> Optional[ProgramSpec]:
    out = None
    current = spec
    while current.iterations > 1:
        candidate = deepcopy(current)
        candidate.iterations = 1
        if budget.check(is_failing, candidate):
            out = current = candidate
            continue
        candidate = deepcopy(current)
        candidate.iterations = current.iterations // 2
        if candidate.iterations > 1 and budget.check(is_failing, candidate):
            out = current = candidate
            continue
        break
    return out


def _reduce_inner_loops(spec, is_failing, budget) -> Optional[ProgramSpec]:
    out = None
    current = spec
    for index, block in enumerate(current.blocks):
        if block.inner_iterations == 0:
            continue
        candidate = deepcopy(current)
        candidate.blocks[index].inner_iterations = 0
        if budget.check(is_failing, candidate):
            out = current = candidate
    return out


def _drop_epilogue(spec, is_failing, budget) -> Optional[ProgramSpec]:
    if not spec.epilogue:
        return None
    candidate = deepcopy(spec)
    candidate.epilogue = False
    return candidate if budget.check(is_failing, candidate) else None


def _reduce_points(spec, is_failing, budget) -> Optional[ProgramSpec]:
    if len(spec.points) <= 1:
        return None
    for point in spec.points:
        candidate = deepcopy(spec)
        candidate.points = [deepcopy(point)]
        if budget.check(is_failing, candidate):
            return candidate
    return None


def _drop_conditions(spec, is_failing, budget) -> Optional[ProgramSpec]:
    out = None
    current = spec
    for index, point in enumerate(current.points):
        if point.condition is None:
            continue
        candidate = deepcopy(current)
        candidate.points[index].condition = None
        if budget.check(is_failing, candidate):
            out = current = candidate
    return out


def _reduce_ops(spec, is_failing, budget) -> Optional[ProgramSpec]:
    """ddmin over each block's op list: drop chunks, halving sizes."""
    out = None
    current = spec
    for index in range(len(current.blocks)):
        reduced = _ddmin_block(current, index, is_failing, budget)
        if reduced is not None:
            out = current = reduced
    return out


def _ddmin_block(spec, block_index, is_failing, budget
                 ) -> Optional[ProgramSpec]:
    out = None
    current = spec
    chunk = max(1, len(current.blocks[block_index].ops) // 2)
    while True:
        start = 0
        shrunk = False
        while start < len(current.blocks[block_index].ops):
            candidate = deepcopy(current)
            del candidate.blocks[block_index].ops[start:start + chunk]
            if budget.check(is_failing, candidate):
                out = current = candidate
                shrunk = True  # same start now names the next chunk
            else:
                start += chunk
        if chunk == 1:
            if not shrunk:
                return out
        else:
            chunk = max(1, chunk // 2)


def _drop_empty_blocks(spec, is_failing, budget) -> Optional[ProgramSpec]:
    if any(p.kind == "break" for p in spec.points):
        return None  # block labels are positional; keep them stable
    empties = [i for i, b in enumerate(spec.blocks)
               if not b.ops and len(spec.blocks) > 1]
    out = None
    current = spec
    for index in reversed(empties):
        if len(current.blocks) <= 1:
            break
        candidate = deepcopy(current)
        del candidate.blocks[index]
        if budget.check(is_failing, candidate):
            out = current = candidate
    return out


def _referenced_vars(spec) -> set[str]:
    used = set()
    for block in spec.blocks:
        for op in block.ops:
            var = op.args.get("var")
            if var is not None:
                used.add(var)
    for point in spec.points:
        if point.kind == "watch":
            used.add(point.target)
        if point.condition is not None:
            used.add(point.condition.split()[0])
    return used


def _drop_unused_vars(spec, is_failing, budget) -> Optional[ProgramSpec]:
    used = _referenced_vars(spec)
    unused = [name for name in spec.var_init if name not in used]
    out = None
    current = spec
    for name in unused:
        candidate = deepcopy(current)
        del candidate.var_init[name]
        if budget.check(is_failing, candidate):
            out = current = candidate
    return out


def _drop_unused_regs(spec, is_failing, budget) -> Optional[ProgramSpec]:
    """Prune ``reg_init`` entries (rendering already elides unused ones
    while the epilogue holds them live; once the epilogue is gone this
    shrinks the artifact's spec too)."""
    used = set()
    for block in spec.blocks:
        for op in block.ops:
            for key in ("rd", "rs"):
                if key in op.args:
                    used.add(op.args[key])
            if op.args.get("src_is_reg"):
                used.add(op.args["src"])
    unused = [reg for reg in spec.reg_init if reg not in used]
    if not unused or spec.epilogue:
        return None
    candidate = deepcopy(spec)
    for reg in unused:
        del candidate.reg_init[reg]
    return candidate if budget.check(is_failing, candidate) else None
