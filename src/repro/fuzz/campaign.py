"""Multi-iteration fuzz campaigns with parallel fan-out.

A campaign derives one :class:`~repro.fuzz.generator.ProgramSpec` per
iteration (seed ``base_seed + i``, each bit-reproducible from its own
reported seed), fans the differential-oracle runs out over the parallel
experiment engine (:class:`repro.harness.runner.Runner` — the same
worker-pool/retry machinery the figure grids use), and for every
failing seed re-runs the oracle in-process, shrinks the spec to a
minimal reproducer, and dumps a self-contained failure artifact to
``.repro_fuzz/failure-<seed>.json`` containing the original spec, the
divergence report, the shrunk spec with *its* report, and the shrunk
program's disassembly.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.config import MachineConfig
from repro.fuzz.generator import (GeneratorConfig, ProgramSpec,
                                  build_program, generate_spec)
from repro.fuzz.oracle import BACKENDS, OracleReport, run_differential
from repro.fuzz.shrinker import instruction_count, shrink
from repro.harness.cache import ResultCache
from repro.harness.runner import Runner
from repro.results import RunResult

DEFAULT_DUMP_DIR = ".repro_fuzz"
_FAIL_MARKER = "fuzz-divergence:"


@dataclass(frozen=True)
class FuzzCell:
    """One campaign iteration, shaped like an experiment cell.

    Carries the full program spec (picklable plain data) so worker
    processes can rebuild and run it — including any fault injection,
    which travels inside the spec.
    """

    spec_data: tuple  # ProgramSpec.to_dict() as a hashable json string
    seed: int
    config: Optional[MachineConfig] = None
    #: Also run the snapshot/restore leg (one backend, seed-rotated).
    checkpoint_leg: bool = False
    #: Also run the multi-process interrupt-determinism leg (one
    #: backend, seed-rotated).
    interrupt_leg: bool = False

    # The Runner's bookkeeping interface (same shape as CellSpec).
    @property
    def benchmark(self) -> str:
        return f"fuzz-{self.seed}"

    kind = "fuzz"
    backend = "differential"
    label = None
    conditional = False

    @property
    def spec(self) -> ProgramSpec:
        return ProgramSpec.from_dict(json.loads(self.spec_data[0]))

    def cache_payload(self, settings) -> dict:
        """Cell identity for the result cache (unused: caching is off)."""
        return {"fuzz_spec": json.loads(self.spec_data[0])}


def _make_cell(spec: ProgramSpec, config: Optional[MachineConfig],
               checkpoint_leg: bool = False,
               interrupt_leg: bool = False) -> FuzzCell:
    return FuzzCell((json.dumps(spec.to_dict(), sort_keys=True),),
                    spec.seed, config, checkpoint_leg, interrupt_leg)


def _checkpoint_backend(cell: FuzzCell) -> Optional[str]:
    """The backend the cell's checkpoint leg exercises (seed-rotated)."""
    if not cell.checkpoint_leg:
        return None
    return BACKENDS[cell.seed % len(BACKENDS)]


def _interrupt_backend(cell: FuzzCell) -> Optional[str]:
    """The backend the cell's interrupt leg exercises (seed-rotated,
    offset so a seed pairs different backends across the two legs)."""
    if not cell.interrupt_leg:
        return None
    return BACKENDS[(cell.seed + 1) % len(BACKENDS)]


def fuzz_worker(cell: FuzzCell, settings) -> RunResult:
    """Worker-process entry point: one oracle run, verdict in-band.

    A divergence is *data*, not a crash: it rides back inside
    ``unsupported_reason`` (prefixed so the parent can tell a fuzz
    failure from a genuine worker error) and the parent re-runs the
    seed in-process for the full report.
    """
    report = run_differential(cell.spec, cell.config,
                              checkpoint_backend=_checkpoint_backend(cell),
                              interrupt_backend=_interrupt_backend(cell))
    reason = "" if report.ok else (
        _FAIL_MARKER + report.divergences[0].describe())
    return RunResult(
        cell.benchmark, cell.kind, cell.backend, None,
        user_transitions=report.stop_count,
        spurious_transitions=sum(report.spurious.values()),
        unsupported_reason=reason)


@dataclass
class Failure:
    """One failing seed, with its shrunk reproducer."""

    seed: int
    report: OracleReport
    spec: ProgramSpec
    shrunk_spec: Optional[ProgramSpec] = None
    shrunk_report: Optional[OracleReport] = None
    shrunk_instructions: int = 0
    artifact_path: Optional[str] = None


@dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`."""

    base_seed: int
    iterations: int
    failures: list[Failure] = field(default_factory=list)
    worker_errors: list[str] = field(default_factory=list)
    total_stops: int = 0
    total_spurious: int = 0
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures and not self.worker_errors

    def summary(self) -> str:
        """A short human-readable campaign report (the CLI's output)."""
        lines = [
            f"{self.iterations} iterations from seed {self.base_seed}: "
            f"{len(self.failures)} failing, "
            f"{self.total_stops} user stops, "
            f"{self.total_spurious} spurious transitions, "
            f"{self.wall_time:.1f}s",
        ]
        for failure in self.failures:
            size = failure.shrunk_instructions
            lines.append(
                f"  seed {failure.seed}: "
                f"{failure.report.divergences[0].describe()[:120]}"
                + (f" (shrunk to {size} instructions,"
                   f" {failure.artifact_path})" if size else ""))
        lines.extend(f"  worker error: {err[:120]}"
                     for err in self.worker_errors)
        return "\n".join(lines)


def run_campaign(base_seed: int, iterations: int, *,
                 workers: int = 0,
                 config: Optional[MachineConfig] = None,
                 generator_config: Optional[GeneratorConfig] = None,
                 inject: Optional[str] = None,
                 dump_dir: str | Path = DEFAULT_DUMP_DIR,
                 shrink_failures: bool = True,
                 shrink_checks: int = 400,
                 checkpoint_leg: bool = False,
                 interrupt_leg: bool = False,
                 progress: bool = False) -> CampaignResult:
    """Fuzz ``iterations`` seeds starting at ``base_seed``.

    With ``workers > 1`` the oracle runs fan out over a process pool;
    failing seeds are then re-run and shrunk serially in-process (the
    shrinker's oracle calls are sequential by nature).  With
    ``checkpoint_leg`` each seed additionally exercises mid-program
    snapshot/restore under one backend (rotated by seed); with
    ``interrupt_leg`` each seed also runs debugged next to a
    co-resident copy of itself under the preemptive kernel (rotated by
    seed, offset by one).
    """
    started = time.perf_counter()
    result = CampaignResult(base_seed=base_seed, iterations=iterations)

    cells = []
    for i in range(iterations):
        spec = generate_spec(base_seed + i, generator_config)
        spec.inject = inject
        cells.append(_make_cell(spec, config, checkpoint_leg,
                                interrupt_leg))

    runner = Runner(workers=workers, cache=ResultCache(enabled=False),
                    worker=fuzz_worker, progress=progress)
    outcomes = runner.run(cells)

    failing: list[FuzzCell] = []
    for cell, outcome in zip(cells, outcomes):
        result.total_stops += outcome.user_transitions
        result.total_spurious += outcome.spurious_transitions
        if outcome.unsupported_reason.startswith(_FAIL_MARKER):
            failing.append(cell)
        elif outcome.unsupported_reason:
            result.worker_errors.append(
                f"seed {cell.seed}: {outcome.unsupported_reason}")

    dump = Path(dump_dir)
    for cell in failing:
        failure = _investigate(cell, shrink_failures, shrink_checks)
        failure.artifact_path = str(_dump_artifact(dump, failure))
        result.failures.append(failure)

    result.wall_time = time.perf_counter() - started
    return result


def _investigate(cell: FuzzCell, do_shrink: bool,
                 shrink_checks: int) -> Failure:
    spec = cell.spec
    ckpt = _checkpoint_backend(cell)
    intr = _interrupt_backend(cell)
    report = run_differential(spec, cell.config, checkpoint_backend=ckpt,
                              interrupt_backend=intr)
    failure = Failure(seed=cell.seed, report=report, spec=spec)
    if report.ok:  # fails in a worker but not here: keep the raw spec
        return failure
    if do_shrink:
        def is_failing(candidate: ProgramSpec) -> bool:
            return not run_differential(candidate, cell.config,
                                        checkpoint_backend=ckpt,
                                        interrupt_backend=intr).ok

        failure.shrunk_spec = shrink(spec, is_failing,
                                     max_checks=shrink_checks)
        failure.shrunk_report = run_differential(failure.shrunk_spec,
                                                 cell.config)
        failure.shrunk_instructions = instruction_count(failure.shrunk_spec)
    return failure


def _dump_artifact(dump_dir: Path, failure: Failure) -> Path:
    dump_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "seed": failure.seed,
        "report": failure.report.to_dict(),
        "spec": failure.spec.to_dict(),
    }
    if failure.shrunk_spec is not None:
        artifact["shrunk_spec"] = failure.shrunk_spec.to_dict()
        artifact["shrunk_report"] = failure.shrunk_report.to_dict()
        artifact["shrunk_instructions"] = failure.shrunk_instructions
        artifact["shrunk_disassembly"] = build_program(
            failure.shrunk_spec).disassemble()
    path = dump_dir / f"failure-{failure.seed}.json"
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(artifact, indent=2))
    tmp.replace(path)
    return path
