"""The differential oracle: N backends x 3 interpreters, one verdict.

For one generated :class:`~repro.fuzz.generator.ProgramSpec` the oracle
runs the program undebugged on the dispatch-table, legacy, and compiled
interpreters, and under each of the five debugger backends on all three
interpreters, and checks:

* **undebugged, table vs legacy and table vs compiled**: identical
  final registers, memory, and full
  :class:`~repro.cpu.stats.SimStats`;
* **each backend, table vs legacy and table vs compiled**: identical
  canonical stop sequence and full SimStats — interpreter choice must
  be invisible;
* **production-toggle leg** (DISE backend, when the spec carries
  points): productions are deactivated right after install, a third of
  the budget runs "undebugged", then they are reactivated for the
  remainder — table vs compiled must agree on stops and stats, which
  is exactly what a compiled tier with broken block invalidation
  cannot do (see the ``compiled-skip-invalidation`` injection);
* **across backends** (and vs undebugged where applicable): identical
  final architectural state (compared registers, every program
  variable, the scratch array, the stack slots, the checksum) and
  identical canonical stop sequences.  Spurious-transition counts are
  explicitly *not* compared across backends: they are the mechanism
  cost the paper measures, and legitimately differ.

Raw stop PCs are **not** comparable across backends — binary rewriting
shifts text addresses, single-stepping stops at the statement after a
store, and DISE traps from inside an expansion.  The canonical
:class:`Stop` record therefore contains only backend-independent facts:
which breakpoint *numbers* were hit (resolved through each backend's
own program image) and which watched variables changed to which values
(diffed against a recorder-private shadow copy).  Data addresses are
identical everywhere (the data segment base is fixed and transforms
only append), so watched-variable reads need no translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.config import DEFAULT_CONFIG, MachineConfig
from repro.cpu.machine import Machine, TrapEvent
from repro.cpu.stats import TransitionKind
from repro.debugger.backends import backend_class
from repro.debugger.watchpoint import Breakpoint, Watchpoint
from repro.fuzz.generator import (ProgramSpec, SCRATCH_QUADS, STACK_SLOTS,
                                  build_program, dynamic_budget)
from repro.isa.program import STACK_TOP

BACKENDS = ("single_step", "virtual_memory", "hardware", "binary_rewrite",
            "dise")
#: Registers whose final values must agree across backends.  r26-r29
#: (ra/gp and the rewriter's scavenged pair) belong to the mechanism,
#: not the program, and are excluded; r30 is the stack pointer.
COMPARE_REGS = tuple(range(1, 26)) + (30,)
QUAD = 8


@dataclass(frozen=True)
class Stop:
    """One canonical user-visible stop.

    ``breakpoints`` holds the numbers of the breakpoints hit (almost
    always one); ``changes`` holds ``(variable, new_value)`` for every
    watched variable whose value differs from the previous stop.  A
    breakpoint number of ``-1`` marks a user stop at a PC that maps to
    no breakpoint — itself a divergence, surfaced by comparison.
    """

    breakpoints: tuple[int, ...] = ()
    changes: tuple[tuple[str, int], ...] = ()

    def describe(self) -> str:
        """Compact rendering, e.g. ``stop(bp#1, v0=0x14)``."""
        parts = [f"bp#{n}" for n in self.breakpoints]
        parts += [f"{name}={value:#x}" for name, value in self.changes]
        return "stop(" + ", ".join(parts) + ")"


class StopRecorder:
    """Interpose on a backend's trap handler; record canonical stops.

    The recorder re-points ``machine.trap_handler`` at itself and
    forwards every event to the backend's own handler, so backend
    classification is untouched.  On a USER classification it computes
    the canonical :class:`Stop` from the backend's *own* program image
    and memory — at that moment the triggering store has committed in
    every mechanism (stores commit before trap delivery; single-step
    traps at the following statement).
    """

    def __init__(self, backend):
        self.backend = backend
        self.stops: list[Stop] = []
        memory = backend.machine.memory
        resolver = backend.resolver
        self._memory = memory
        self._watch_addrs: dict[str, int] = {}
        for wp in backend.watchpoints:
            name = str(wp.expression)
            self._watch_addrs[name] = resolver.resolve(name)[0]
        self._shadow = {name: memory.read_int(addr, QUAD)
                        for name, addr in self._watch_addrs.items()}
        self._bp_numbers = {bp.resolve_pc(backend.program): bp.number
                            for bp in backend.breakpoints}
        self._inner = backend.machine.trap_handler
        backend.machine.trap_handler = self

    def __call__(self, event: TrapEvent) -> TransitionKind:
        kind = self._inner(event)
        if kind is TransitionKind.USER:
            changes = []
            for name, addr in self._watch_addrs.items():
                value = self._memory.read_int(addr, QUAD)
                if value != self._shadow[name]:
                    self._shadow[name] = value
                    changes.append((name, value))
            breakpoints: tuple[int, ...] = ()
            if self._bp_numbers:
                number = self._bp_numbers.get(event.pc, -1)
                breakpoints = (number,)
            self.stops.append(Stop(breakpoints, tuple(sorted(changes))))
        return kind


@dataclass
class RunOutcome:
    """Final observable state of one run of the differential matrix."""

    name: str  # e.g. "dise/table" or "undebugged/legacy"
    halted: bool = False
    stops: tuple[Stop, ...] = ()
    regs: tuple[int, ...] = ()  # values of COMPARE_REGS, in order
    state: tuple[tuple[str, int], ...] = ()  # named memory words
    stats: Optional[dict] = None  # SimStats.to_dict()
    error: Optional[str] = None
    fingerprint: str = ""  # Machine.state_fingerprint (checkpoint legs)

    @property
    def arch_state(self) -> tuple:
        return (self.halted, self.regs, self.state)


@dataclass
class Divergence:
    """One observed disagreement between two runs."""

    kind: str  # "error" | "termination" | "stops" | "state" | "stats"
    runs: tuple[str, str]
    detail: str

    def describe(self) -> str:
        """One-line rendering used in summaries and failure artifacts."""
        return f"[{self.kind}] {self.runs[0]} vs {self.runs[1]}: {self.detail}"


@dataclass
class OracleReport:
    """Everything :func:`run_differential` observed for one spec."""

    seed: int
    divergences: list[Divergence] = field(default_factory=list)
    stop_count: int = 0
    spurious: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        """JSON-ready form, embedded in failure artifacts."""
        return {
            "seed": self.seed,
            "ok": self.ok,
            "stop_count": self.stop_count,
            "spurious": self.spurious,
            "divergences": [
                {"kind": d.kind, "runs": list(d.runs), "detail": d.detail}
                for d in self.divergences
            ],
        }


#: Interpreter legs every backend is exercised on.  "table" is the
#: reference; the others must be observationally identical to it.
INTERPRETERS = ("table", "legacy", "compiled")


def _interp_config(base: Optional[MachineConfig], interp: str
                   ) -> MachineConfig:
    config = base or DEFAULT_CONFIG
    legacy = interp == "legacy"
    field = "compiled" if interp == "compiled" else "table"
    if config.legacy_interpreter != legacy or config.interpreter != field:
        config = replace(config, legacy_interpreter=legacy,
                         interpreter=field)
    if field == "compiled" and config.compiled_hot_threshold != 1:
        # Generated programs are tiny; compile every block on first
        # visit so shrunk reproducers stay small and invalidation bugs
        # cannot hide behind warm-up heuristics.
        config = replace(config, compiled_hot_threshold=1)
    return config


def _final_state(spec: ProgramSpec, program, memory) -> tuple:
    """Named memory words every run must agree on."""
    out = []
    for name in spec.var_init:
        out.append((name, memory.read_int(program.address_of(name), QUAD)))
    if spec.epilogue:
        out.append(("checksum",
                    memory.read_int(program.address_of("checksum"), QUAD)))
    scratch = program.address_of("fuzz_scratch")
    for i in range(SCRATCH_QUADS):
        out.append((f"scratch[{i}]",
                    memory.read_int(scratch + i * QUAD, QUAD)))
    for slot in range(STACK_SLOTS):
        out.append((f"stack[{slot}]",
                    memory.read_int(STACK_TOP + slot * QUAD, QUAD)))
    return tuple(out)


def _run_undebugged(spec: ProgramSpec, config: Optional[MachineConfig],
                    interp: str = "table") -> RunOutcome:
    name = f"undebugged/{interp}"
    try:
        program = build_program(spec)
        machine = Machine(program, _interp_config(config, interp),
                          detailed_timing=False)
        run = machine.run(dynamic_budget(spec))
        return RunOutcome(
            name=name, halted=run.halted,
            regs=tuple(machine.regs[r] for r in COMPARE_REGS),
            state=_final_state(spec, program, machine.memory),
            stats=run.stats.to_dict())
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return RunOutcome(name=name, error=f"{type(exc).__name__}: {exc}")


def _build_points(spec: ProgramSpec) -> tuple[list[Watchpoint],
                                              list[Breakpoint]]:
    watchpoints, breakpoints = [], []
    for number, point in enumerate(spec.points, start=1):
        if point.kind == "watch":
            watchpoints.append(Watchpoint.parse(point.target,
                                                point.condition, number))
        else:
            breakpoints.append(Breakpoint.parse(point.target,
                                                point.condition, number))
    return watchpoints, breakpoints


def _run_backend(spec: ProgramSpec, backend_name: str,
                 config: Optional[MachineConfig],
                 interp: str = "table") -> RunOutcome:
    from repro.fuzz.inject import applied_injection

    name = f"{backend_name}/{interp}"
    try:
        with applied_injection(spec.inject, backend_name):
            program = build_program(spec)
            watchpoints, breakpoints = _build_points(spec)
            backend = backend_class(backend_name)(
                program, watchpoints, breakpoints,
                _interp_config(config, interp), detailed_timing=False)
            recorder = StopRecorder(backend)
            run = backend.run(dynamic_budget(spec))
        return RunOutcome(
            name=name, halted=run.halted, stops=tuple(recorder.stops),
            regs=tuple(backend.machine.regs[r] for r in COMPARE_REGS),
            state=_final_state(spec, program, backend.machine.memory),
            stats=run.stats.to_dict())
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return RunOutcome(name=name, error=f"{type(exc).__name__}: {exc}")


def _diff_stats(a: dict, b: dict) -> str:
    keys = sorted(set(a) | set(b))
    diffs = [f"{k}: {a.get(k)} != {b.get(k)}" for k in keys
             if a.get(k) != b.get(k)]
    return "; ".join(diffs)


def _diff_state(a: RunOutcome, b: RunOutcome) -> str:
    parts = []
    if a.halted != b.halted:
        parts.append(f"halted {a.halted} != {b.halted}")
    for reg, va, vb in zip(COMPARE_REGS, a.regs, b.regs):
        if va != vb:
            parts.append(f"r{reg} {va:#x} != {vb:#x}")
    for (name, va), (_, vb) in zip(a.state, b.state):
        if va != vb:
            parts.append(f"{name} {va:#x} != {vb:#x}")
    if a.fingerprint and b.fingerprint and a.fingerprint != b.fingerprint:
        parts.append("state fingerprint differs")
    return "; ".join(parts)


def _diff_stops(a: RunOutcome, b: RunOutcome) -> str:
    if len(a.stops) != len(b.stops):
        return (f"{len(a.stops)} stops != {len(b.stops)} stops; first={_first_stop_diff(a, b)}")
    return _first_stop_diff(a, b)


def _first_stop_diff(a: RunOutcome, b: RunOutcome) -> str:
    for i, (sa, sb) in enumerate(zip(a.stops, b.stops)):
        if sa != sb:
            return f"stop {i}: {sa.describe()} != {sb.describe()}"
    return "tail differs"


def _compare(report: OracleReport, a: RunOutcome, b: RunOutcome, *,
             stats: bool, stops: bool) -> None:
    """Append divergences between two runs to ``report``."""
    runs = (a.name, b.name)
    if a.error or b.error:
        if a.error != b.error:
            report.divergences.append(Divergence(
                "error", runs, f"{a.error!r} != {b.error!r}"))
        return
    if not a.halted or not b.halted:
        if a.halted != b.halted:
            report.divergences.append(Divergence(
                "termination", runs,
                f"halted {a.halted} != {b.halted}"))
    if stops and a.stops != b.stops:
        report.divergences.append(Divergence("stops", runs,
                                             _diff_stops(a, b)))
    state_diff = _diff_state(a, b)
    if state_diff:
        report.divergences.append(Divergence("state", runs, state_diff))
    if stats:
        stats_diff = _diff_stats(a.stats, b.stats)
        if stats_diff:
            report.divergences.append(Divergence("stats", runs, stats_diff))


def production_toggle_leg(spec: ProgramSpec,
                          config: Optional[MachineConfig] = None
                          ) -> list[Divergence]:
    """Toggle DISE productions mid-run; table and compiled must agree.

    The DISE backend's productions are deactivated immediately after
    install, a third of the budget runs with them inactive, then they
    are reactivated (at their original priorities) and the run
    finishes.  Both interpreters see the exact same toggle points
    (limits count application instructions), so stop sequences, final
    state, and SimStats must match bit for bit.

    This leg exists to police compiled-block invalidation: a block
    compiled during the inactive window inlines plain stores straight
    through what later become expansion trigger sites.  If
    reactivation fails to flush the block cache (the
    ``compiled-skip-invalidation`` injection), the compiled run misses
    every post-reactivation watchpoint expansion those blocks cover —
    a stops divergence against the identically toggled table run.
    """
    from repro.fuzz.inject import applied_injection

    if not spec.points:
        return []
    budget = dynamic_budget(spec)
    # Size the inactive window from the run's *actual* length, not the
    # budget: generated programs typically halt far below the budget,
    # and a window past the halt point would never exercise
    # reactivation at all.
    probe = _run_undebugged(spec, config, "table")
    if probe.error or not probe.halted:
        return []  # the main matrix reports this failure
    third = max(probe.stats["app_instructions"] // 3, 1)
    outcomes = []
    for interp in ("table", "compiled"):
        name = f"dise-toggle/{interp}"
        try:
            with applied_injection(spec.inject, "dise"):
                program = build_program(spec)
                watchpoints, breakpoints = _build_points(spec)
                backend = backend_class("dise")(
                    program, watchpoints, breakpoints,
                    _interp_config(config, interp), detailed_timing=False)
                recorder = StopRecorder(backend)
                controller = backend.machine.dise_controller
                productions = controller.installed_productions
                for production in productions:
                    controller.deactivate(production)
                backend.run(third)
                for production in productions:
                    controller.activate(production)
                run = backend.run(budget)
            outcomes.append(RunOutcome(
                name=name, halted=run.halted, stops=tuple(recorder.stops),
                regs=tuple(backend.machine.regs[r] for r in COMPARE_REGS),
                state=_final_state(spec, program, backend.machine.memory),
                stats=run.stats.to_dict()))
        except Exception as exc:  # noqa: BLE001 - a crash IS the finding
            outcomes.append(RunOutcome(name=name,
                                       error=f"{type(exc).__name__}: {exc}"))
    report = OracleReport(seed=spec.seed)
    _compare(report, outcomes[0], outcomes[1], stats=True, stops=True)
    return report.divergences


def checkpoint_leg(spec: ProgramSpec, backend_name: str,
                   config: Optional[MachineConfig] = None,
                   interp: str = "table") -> list[Divergence]:
    """Exercise snapshot/restore mid-program under one backend.

    Three runs of the same debugged program:

    * an uninterrupted reference run to the budget;
    * a run interrupted at half the budget to take a snapshot, then
      finished ("ckpt-finish");
    * the same machine restored from that snapshot and finished again
      ("ckpt-replay").

    All three must agree bit-for-bit on the canonical stop sequence,
    final architectural state, full SimStats, *and* the machine's
    ``state_fingerprint`` — taking a checkpoint must be invisible, and
    restoring one must deterministically reproduce the suffix.  The
    recorder's shadow state lives outside the machine, so it is saved
    and restored alongside the snapshot.
    """
    from repro.fuzz.inject import applied_injection

    budget = dynamic_budget(spec)
    half = max(budget // 2, 1)

    def _outcome(name, backend, recorder, run) -> RunOutcome:
        return RunOutcome(
            name=name, halted=run.halted, stops=tuple(recorder.stops),
            regs=tuple(backend.machine.regs[r] for r in COMPARE_REGS),
            state=_final_state(spec, backend.program,
                               backend.machine.memory),
            stats=run.stats.to_dict(),
            fingerprint=backend.state_fingerprint())

    try:
        with applied_injection(spec.inject, backend_name):
            watchpoints, breakpoints = _build_points(spec)
            reference = backend_class(backend_name)(
                build_program(spec), watchpoints, breakpoints,
                _interp_config(config, interp), detailed_timing=False)
            ref_recorder = StopRecorder(reference)
            ref = _outcome(f"{backend_name}/{interp}/ckpt-ref", reference,
                           ref_recorder, reference.run(budget))

            watchpoints, breakpoints = _build_points(spec)
            backend = backend_class(backend_name)(
                build_program(spec), watchpoints, breakpoints,
                _interp_config(config, interp), detailed_timing=False)
            recorder = StopRecorder(backend)
            backend.run(half)
            blob = backend.snapshot()
            saved_stops = list(recorder.stops)
            saved_shadow = dict(recorder._shadow)
            finish = _outcome(f"{backend_name}/{interp}/ckpt-finish",
                              backend, recorder, backend.run(budget))
            backend.restore(blob)
            recorder.stops[:] = saved_stops
            recorder._shadow = dict(saved_shadow)
            replay = _outcome(f"{backend_name}/{interp}/ckpt-replay",
                              backend, recorder, backend.run(budget))
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return [Divergence(
            "error", (f"{backend_name}/{interp}/ckpt",) * 2,
            f"{type(exc).__name__}: {exc}")]

    report = OracleReport(seed=spec.seed)
    _compare(report, ref, finish, stats=True, stops=True)
    _compare(report, finish, replay, stats=True, stops=True)
    return report.divergences


def interrupt_leg(spec: ProgramSpec, backend_name: str = "dise",
                  config: Optional[MachineConfig] = None
                  ) -> list[Divergence]:
    """Multi-process interrupt determinism: table vs compiled.

    The spec's program runs debugged as pid 1 with an undebugged copy
    of *itself* spawned as a co-resident process, under the round-robin
    kernel with a pinned preemption quantum sized so each process is
    preempted several times.  Timer interrupts land at application-
    instruction boundaries on every interpreter tier, so the two legs
    must agree bit for bit on:

    * the canonical stop sequence (all stops come from pid 1 — the
      debug mechanism lives in its process context only);
    * pid 1's final architectural state, which must also match a *solo*
      debugged table run — preemption must be invisible to the
      debugged program;
    * the whole-machine ``state_fingerprint`` (covers every process)
      and the kernel's context-switch/preemption/syscall counters.
    """
    from repro.fuzz.inject import applied_injection

    probe = _run_undebugged(spec, config, "table")
    if probe.error or not probe.halted:
        return []  # the main matrix reports this failure
    # Several preemptions per process, pinned across interpreters.
    quantum = max(probe.stats["app_instructions"] // 8, 20)
    budget = 2 * dynamic_budget(spec)

    outcomes = []
    for interp in ("table", "compiled"):
        name = f"{backend_name}-mp/{interp}"
        try:
            with applied_injection(spec.inject, backend_name):
                program = build_program(spec)
                watchpoints, breakpoints = _build_points(spec)
                backend = backend_class(backend_name)(
                    program, watchpoints, breakpoints,
                    _interp_config(config, interp), detailed_timing=False,
                    processes=[build_program(spec)], quantum=quantum)
                recorder = StopRecorder(backend)
                run = backend.run(budget)
            kernel = backend.kernel
            target = kernel.process_state(1)
            outcomes.append(RunOutcome(
                name=name, halted=run.halted, stops=tuple(recorder.stops),
                regs=tuple(target.regs[r] for r in COMPARE_REGS),
                state=_final_state(spec, program, target.memory),
                stats={"context_switches": kernel.context_switches,
                       "preemptions": kernel.preemptions,
                       "syscalls": kernel.syscalls},
                fingerprint=backend.state_fingerprint()))
        except Exception as exc:  # noqa: BLE001 - a crash IS the finding
            outcomes.append(RunOutcome(name=name,
                                       error=f"{type(exc).__name__}: {exc}"))
    report = OracleReport(seed=spec.seed)
    _compare(report, outcomes[0], outcomes[1], stats=True, stops=True)
    # Preemption must not perturb the debugged process: pid 1's stops
    # and final state match a solo debugged run (stats legitimately
    # differ -- the neighbour's instructions are on the same machine).
    solo = _run_backend(spec, backend_name, config, "table")
    _compare(report, solo, outcomes[0], stats=False, stops=True)
    return report.divergences


def timeline_leg(spec: ProgramSpec, backend_name: str,
                 config: Optional[MachineConfig] = None,
                 interp: str = "table", *,
                 interval: int = 256,
                 max_targets: int = 3) -> list[Divergence]:
    """Cross-check time-travel ``last-write`` answers for one spec.

    The debugged program runs forward under a checkpointing
    :class:`~repro.replay.ReverseController` with a ground-truth
    :class:`~repro.timetravel.StoreLogRecorder` attached for the whole
    run — the recorder-private shadow store log, same trick as
    :class:`StopRecorder`'s shadow copies.  For sampled watched
    addresses the bisected :meth:`~repro.timetravel.TimelineQuery.
    last_write` answer must then agree with

    * the newest ground-truth store event overlapping the address
      (ordinal, pc, address, size, value, old value), and
    * the naive rerun-from-genesis landing (``last_write_linear``),
      including the re-landed ``state_fingerprint`` bit for bit.
    """
    from repro.fuzz.inject import applied_injection
    from repro.replay.reverse import ReverseController
    from repro.timetravel import StoreLogRecorder, TimelineQuery

    budget = dynamic_budget(spec)
    name = f"{backend_name}/{interp}/timeline"
    divergences: list[Divergence] = []
    try:
        with applied_injection(spec.inject, backend_name):
            program = build_program(spec)
            watchpoints, breakpoints = _build_points(spec)
            backend = backend_class(backend_name)(
                program, watchpoints, breakpoints,
                _interp_config(config, interp), detailed_timing=False)
            controller = ReverseController(backend, interval=interval)
            truth = StoreLogRecorder(backend.machine)
            backend.machine.store_observer = truth
            try:
                while True:
                    run = controller.resume(budget)
                    if run.halted or not run.stopped_at_user:
                        break
            finally:
                backend.machine.store_observer = None

            query = TimelineQuery(controller)
            targets = sorted({str(wp.expression)
                              for wp in backend.watchpoints})
            if not targets:
                targets = sorted(spec.var_init)
            for target in targets[:max_targets]:
                address, size = query._resolve_target(target)
                matches = [e for e in truth.events
                           if e.overlaps(address, size)]
                expected = matches[-1] if matches else None
                answer = query.last_write(target)
                if (expected is None) != (not answer.found):
                    divergences.append(Divergence(
                        "stops", (name, name),
                        f"last-write {target}: found={answer.found}, "
                        f"shadow log has {len(matches)} matches"))
                    continue
                if expected is None:
                    continue
                got = (answer.app_instructions, answer.pc, answer.address,
                       answer.size, answer.value, answer.old_value)
                want = (expected.app_instructions, expected.pc,
                        expected.address, expected.size, expected.value,
                        expected.old_value)
                if got != want:
                    divergences.append(Divergence(
                        "stops", (name, name),
                        f"last-write {target}: bisected {got} != "
                        f"shadow-log {want}"))
                linear = query.last_write_linear(target)
                if ((answer.app_instructions, answer.pc,
                     answer.state_fingerprint)
                        != (linear.app_instructions, linear.pc,
                            linear.state_fingerprint)):
                    divergences.append(Divergence(
                        "state", (name, name),
                        f"last-write {target}: bisected landing "
                        f"(app={answer.app_instructions}, "
                        f"pc={answer.pc:#x}) does not re-land the "
                        f"linear genesis replay bit-identically"))
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return [Divergence("error", (name, name),
                           f"{type(exc).__name__}: {exc}")]
    return divergences


def run_differential(spec: ProgramSpec,
                     config: Optional[MachineConfig] = None,
                     backends: tuple[str, ...] = BACKENDS,
                     checkpoint_backend: Optional[str] = None,
                     interrupt_backend: Optional[str] = None
                     ) -> OracleReport:
    """Run the full differential matrix for one spec.

    Returns an :class:`OracleReport`; ``report.ok`` is the verdict.
    A non-halting run (budget exhausted), a crash, a final-state
    mismatch, or a stop-sequence mismatch all surface as divergences.

    ``checkpoint_backend`` additionally runs the snapshot/restore
    :func:`checkpoint_leg` under the named backend on both
    interpreters; ``interrupt_backend`` runs the multi-process
    :func:`interrupt_leg` under the named backend.  Both fold their
    divergences into the report.
    """
    report = OracleReport(seed=spec.seed)

    base_table = _run_undebugged(spec, config, "table")
    if base_table.error:
        report.divergences.append(Divergence(
            "error", (base_table.name, base_table.name), base_table.error))
        return report
    if not base_table.halted:
        report.divergences.append(Divergence(
            "termination", (base_table.name, base_table.name),
            "undebugged run did not halt within budget (generator bug)"))
        return report
    for interp in INTERPRETERS[1:]:
        _compare(report, base_table,
                 _run_undebugged(spec, config, interp),
                 stats=True, stops=False)

    reference: Optional[RunOutcome] = None
    for backend_name in backends:
        table = _run_backend(spec, backend_name, config, "table")
        # Interpreter choice must be invisible per backend.
        for interp in INTERPRETERS[1:]:
            _compare(report, table,
                     _run_backend(spec, backend_name, config, interp),
                     stats=True, stops=True)
        if table.error:
            report.divergences.append(Divergence(
                "error", (table.name, table.name), table.error))
            continue
        if not table.halted:
            report.divergences.append(Divergence(
                "termination", (table.name, table.name),
                "debugged run did not halt within budget"))
        # Debugging must not perturb the application's final state.
        _compare(report, base_table, table, stats=False, stops=False)
        # All backends must present the same user-visible stop sequence.
        if reference is None:
            reference = table
            report.stop_count = len(table.stops)
        else:
            _compare(report, reference, table, stats=False, stops=True)
        if table.stats is not None:
            transitions = table.stats.get("transitions", {})
            report.spurious[backend_name] = sum(
                count for key, count in transitions.items()
                if key.startswith("spurious"))
    if "dise" in backends:
        report.divergences.extend(production_toggle_leg(spec, config))
    if checkpoint_backend is not None:
        for interp in INTERPRETERS:
            report.divergences.extend(
                checkpoint_leg(spec, checkpoint_backend, config,
                               interp=interp))
    if interrupt_backend is not None:
        report.divergences.extend(
            interrupt_leg(spec, interrupt_backend, config))
    return report
