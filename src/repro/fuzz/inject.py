"""Named fault injections: deliberately broken stop conditions.

The oracle is only trustworthy if it *catches* bugs, so each injection
here mutates one backend's stop condition in a way a real regression
could — and the test suite asserts the differential oracle flags it and
the shrinker reduces it to a small reproducer.

An injection is applied by name (carried inside the
:class:`~repro.fuzz.generator.ProgramSpec`, so worker processes apply
it too) and patches exactly one backend class; every other backend runs
pristine, which is what makes the mutation observable as a cross-backend
divergence.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.cpu.machine import TrapKind
from repro.cpu.stats import TransitionKind


@dataclass(frozen=True)
class Injection:
    """One named mutation of a backend's stop condition."""

    name: str
    backend: str  # backend under which the injection is applied
    attr: str
    replacement: Callable
    description: str
    # What gets patched: the backend's own class (default), or the
    # compiled execution tier (exercised when that backend's runs use
    # MachineConfig.interpreter="compiled").
    patches: str = "backend"

    def target_class(self):
        """The class this injection patches."""
        if self.patches == "compiled-tier":
            from repro.cpu.compiled import CompiledTier

            return CompiledTier
        from repro.debugger.backends import backend_class

        return backend_class(self.backend)


def _hw_value_blind(self, hits):
    # Mutated stop condition: an address match alone stops the user —
    # the silent-store (spurious value) filter is gone.
    if hits:
        return TransitionKind.USER
    return TransitionKind.SPURIOUS_ADDRESS


def _ss_skip_breakpoints(self, event):
    # Mutated stop condition: the per-statement breakpoint-address
    # check was dropped; only watchpoints are re-evaluated.
    if event.kind is not TrapKind.SINGLE_STEP:
        return TransitionKind.NONE
    if not self.watchpoints:
        return TransitionKind.SPURIOUS_ADDRESS
    return self.monitor.check_all()


def _vm_predicate_blind(self, hits):
    # Mutated stop condition: conditional watchpoints stop as if they
    # were unconditional (the predicate is never consulted).
    if not hits:
        return TransitionKind.SPURIOUS_ADDRESS
    for wp in hits:
        changed, _predicate = self.monitor.check(wp)
        if changed:
            return TransitionKind.USER
    return TransitionKind.SPURIOUS_VALUE


def _compiled_skip_invalidation(self):
    # Mutated invalidation: the compiled tier's staleness check always
    # reports "fresh", so compiled blocks survive DISE production
    # install/activate/deactivate and text mutations.  Blocks compiled
    # while productions were inactive keep running with plain inline
    # stores through what should be expansion trigger sites — missed
    # watchpoint stops, caught by the production-toggle oracle leg.
    return False


def _rw_breakpoints_unconditional(self, pc):
    # Mutated stop condition: breakpoint conditions are ignored.
    bp = self._breakpoint_pcs.get(pc)
    if bp is None or not bp.enabled:
        return TransitionKind.SPURIOUS_ADDRESS
    return TransitionKind.USER


INJECTIONS: dict[str, Injection] = {
    inj.name: inj for inj in (
        Injection("hw-value-blind", "hardware", "classify_store_hit",
                  _hw_value_blind,
                  "hardware backend stops on silent stores"),
        Injection("ss-skip-breakpoints", "single_step", "handle_trap",
                  _ss_skip_breakpoints,
                  "single-step backend never hits breakpoints"),
        Injection("vm-predicate-blind", "virtual_memory",
                  "classify_store_hit", _vm_predicate_blind,
                  "virtual-memory backend ignores watchpoint conditions"),
        Injection("rw-breakpoints-unconditional", "binary_rewrite",
                  "classify_breakpoint", _rw_breakpoints_unconditional,
                  "binary-rewrite backend ignores breakpoint conditions"),
        Injection("compiled-skip-invalidation", "dise", "_stale",
                  _compiled_skip_invalidation,
                  "compiled tier never invalidates its block cache",
                  patches="compiled-tier"),
    )
}

_MISSING = object()


@contextmanager
def applied_injection(name: str | None, backend_name: str):
    """Apply injection ``name`` while running ``backend_name``.

    No-op when ``name`` is None or targets a different backend.  The
    patch is installed on the backend *class* and removed on exit, so
    it covers both backend construction and the run's trap handling.
    """
    if name is None:
        yield
        return
    injection = INJECTIONS[name]  # unknown name -> KeyError, on purpose
    if injection.backend != backend_name:
        yield
        return
    cls = injection.target_class()
    original = cls.__dict__.get(injection.attr, _MISSING)
    setattr(cls, injection.attr, injection.replacement)
    try:
        yield
    finally:
        if original is _MISSING:
            delattr(cls, injection.attr)
        else:
            setattr(cls, injection.attr, original)
