"""Golden-trace snapshots of pinned fuzz seeds.

A golden record pins, for one seed, the canonical user-visible stop
sequence (recorded under the virtual-memory backend — any backend would
do, they must agree) and the final architectural state of the
undebugged run.  The snapshot files live in ``tests/fuzz/golden/`` and
regress two things hand-written tests can't: that the *generator* is
bit-stable (a changed program for the same seed invalidates every
reported seed) and that debugger stop semantics don't drift silently.

Regenerate after an intentional change with::

    repro-fuzz --write-golden tests/fuzz/golden
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.config import MachineConfig
from repro.fuzz.generator import generate_spec
from repro.fuzz.oracle import BACKENDS, _run_backend, _run_undebugged

GOLDEN_SEEDS = (1, 7, 23, 101, 4242)
# Format 2: adds the compiled-interpreter rotation record
# (compiled_backend/compiled_stops), pinning the compiled tier's stop
# sequence under a seed-rotated backend.
GOLDEN_FORMAT = 2
_REFERENCE_BACKEND = "virtual_memory"


def _stop_list(outcome) -> list[dict]:
    return [{"breakpoints": list(stop.breakpoints),
             "changes": [[name, value] for name, value in stop.changes]}
            for stop in outcome.stops]


def compute_golden(seed: int,
                   config: Optional[MachineConfig] = None) -> dict:
    """The canonical record for ``seed`` (JSON-ready, key-sorted)."""
    spec = generate_spec(seed)
    base = _run_undebugged(spec, config, "table")
    debugged = _run_backend(spec, _REFERENCE_BACKEND, config, "table")
    # Rotate the compiled interpreter through the backend matrix: each
    # pinned seed exercises it under a different backend (rotated by
    # position so the five golden seeds jointly cover all five
    # backends; ad-hoc seeds fall back to a seed-keyed pick).
    if seed in GOLDEN_SEEDS:
        compiled_backend = BACKENDS[GOLDEN_SEEDS.index(seed)
                                    % len(BACKENDS)]
    else:
        compiled_backend = BACKENDS[seed % len(BACKENDS)]
    compiled = _run_backend(spec, compiled_backend, config, "compiled")
    if base.error or debugged.error or compiled.error:
        raise RuntimeError(
            f"golden seed {seed} failed to run: "
            f"{base.error or debugged.error or compiled.error}")
    return {
        "format": GOLDEN_FORMAT,
        "seed": seed,
        "mode": spec.mode,
        "stops": _stop_list(debugged),
        "compiled_backend": compiled_backend,
        "compiled_stops": _stop_list(compiled),
        "final_state": [[name, value] for name, value in base.state],
        "regs": list(base.regs),
    }


def path_for(directory: str | Path, seed: int) -> Path:
    """Snapshot file location for ``seed`` inside ``directory``."""
    return Path(directory) / f"seed-{seed}.json"


def write_golden(directory: str | Path,
                 seeds: Iterable[int] = GOLDEN_SEEDS,
                 config: Optional[MachineConfig] = None) -> list[Path]:
    """(Re)write the snapshot files; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for seed in seeds:
        path = path_for(directory, seed)
        path.write_text(json.dumps(compute_golden(seed, config),
                                   indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def verify_golden(directory: str | Path,
                  seeds: Optional[Iterable[int]] = None,
                  config: Optional[MachineConfig] = None) -> list[str]:
    """Compare current behavior against the snapshots.

    Returns a list of human-readable mismatch descriptions (empty =
    everything matches).  A missing snapshot file is a mismatch.
    """
    problems = []
    for seed in (GOLDEN_SEEDS if seeds is None else seeds):
        path = path_for(directory, seed)
        if not path.exists():
            problems.append(f"seed {seed}: no snapshot at {path}")
            continue
        recorded = json.loads(path.read_text())
        current = compute_golden(seed, config)
        if recorded != current:
            keys = [k for k in current
                    if recorded.get(k) != current.get(k)]
            problems.append(
                f"seed {seed}: drift in {', '.join(keys)} (see {path})")
    return problems
