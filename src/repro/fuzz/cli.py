"""The ``repro-fuzz`` command-line tool.

Runs a differential fuzz campaign::

    repro-fuzz --seed 1234 --iterations 200
    repro-fuzz --iterations 50 --workers 2        # CI smoke job
    repro-fuzz --inject-bug hw-value-blind        # prove the oracle bites

Every iteration runs one generated program undebugged on both
interpreters and under all five debugger backends on both interpreters,
asserting identical final state and identical user-visible stop
sequences.  Failing seeds are shrunk and dumped as self-contained JSON
artifacts under ``--dump-dir`` (default ``.repro_fuzz/``).

Golden snapshots (``tests/fuzz/golden/``) are maintained with
``--write-golden``/``--check-golden``.
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.campaign import DEFAULT_DUMP_DIR, run_campaign
from repro.fuzz.generator import GeneratorConfig
from repro.fuzz.golden import verify_golden, write_golden
from repro.fuzz.inject import INJECTIONS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzing of the five debugger backends "
                    "and both interpreter cores")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; iteration i uses seed+i "
                             "(default 0)")
    parser.add_argument("--iterations", type=int, default=100,
                        help="number of generated programs (default 100)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = serial in-process)")
    parser.add_argument("--inject-bug", default=None, metavar="NAME",
                        choices=sorted(INJECTIONS),
                        help="apply a named fault injection "
                             "(see --list-injections)")
    parser.add_argument("--list-injections", action="store_true",
                        help="list the available fault injections and exit")
    parser.add_argument("--dump-dir", default=DEFAULT_DUMP_DIR,
                        help="failure-artifact directory "
                             f"(default {DEFAULT_DUMP_DIR})")
    parser.add_argument("--no-shrink", action="store_true",
                        help="dump failing specs without minimizing them")
    parser.add_argument("--shrink-checks", type=int, default=400,
                        help="oracle-run budget per shrink (default 400)")
    parser.add_argument("--checkpoint-leg", action="store_true",
                        help="also exercise mid-program snapshot/restore "
                             "under one backend per seed (seed-rotated)")
    parser.add_argument("--interrupt-leg", action="store_true",
                        help="also run each program debugged beside a "
                             "co-resident copy of itself under the "
                             "preemptive kernel (seed-rotated backend)")
    parser.add_argument("--blocks", type=int, default=None,
                        help="body blocks per generated program")
    parser.add_argument("--store-density", type=float, default=None,
                        help="fraction of body ops that are stores")
    parser.add_argument("--branch-density", type=float, default=None,
                        help="fraction of body ops that are branches")
    parser.add_argument("--write-golden", metavar="DIR", default=None,
                        help="(re)write golden snapshots into DIR and exit")
    parser.add_argument("--check-golden", metavar="DIR", default=None,
                        help="verify golden snapshots in DIR and exit")
    parser.add_argument("--progress", action="store_true",
                        help="stream the runner's progress line to stderr")
    parser.add_argument("--quiet", action="store_true",
                        help="print nothing on success")
    return parser


def _generator_config(args) -> GeneratorConfig | None:
    overrides = {}
    if args.blocks is not None:
        overrides["blocks"] = args.blocks
    if args.store_density is not None:
        overrides["store_density"] = args.store_density
    if args.branch_density is not None:
        overrides["branch_density"] = args.branch_density
    return GeneratorConfig(**overrides) if overrides else None


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the campaign; 0 = no divergence."""
    args = _build_parser().parse_args(argv)

    if args.list_injections:
        for name in sorted(INJECTIONS):
            print(f"{name}: {INJECTIONS[name].description}")
        return 0
    if args.write_golden is not None:
        for path in write_golden(args.write_golden):
            print(f"wrote {path}")
        return 0
    if args.check_golden is not None:
        problems = verify_golden(args.check_golden)
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1 if problems else 0

    result = run_campaign(
        args.seed, args.iterations,
        workers=args.workers,
        generator_config=_generator_config(args),
        inject=args.inject_bug,
        dump_dir=args.dump_dir,
        shrink_failures=not args.no_shrink,
        shrink_checks=args.shrink_checks,
        checkpoint_leg=args.checkpoint_leg,
        interrupt_leg=args.interrupt_leg,
        progress=args.progress,
    )
    if not args.quiet or not result.ok:
        print(result.summary())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
