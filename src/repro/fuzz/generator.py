"""Seeded random-program generator for differential fuzzing.

Programs are generated as a :class:`ProgramSpec` — a plain-data
description (register initializers, variable initializers, a list of
body blocks, a debug plan) that renders deterministically to a
:class:`~repro.isa.program.Program` via :func:`build_program`.  The
split matters: the shrinker edits specs, not instruction lists, and
failure artifacts serialize specs as JSON.

Generated programs are **always terminating** and **memory bounded**
by construction:

* control flow is a single bounded outer loop, optional bounded inner
  (countdown) loops per block, and *forward-only* skip branches inside
  a block — there is no indirect control flow (``jmp``/``jsr``/``ret``)
  and no ``trap``/``ctrap`` (a raw app trap is classified differently
  by different backends, which would be a false divergence);
* stores address named data quads, a masked scratch array, or a fixed
  window of stack slots — never computed wild addresses;
* registers r26–r29 are never touched (calling convention), nor are
  r27/r28 (scavenged by the binary rewriter; the register plan below
  keeps clear of both).

Every instruction is marked as a statement start so the single-step
backend observes state at instruction granularity — the granularity at
which the canonical stop sequences of all five backends coincide (see
DESIGN.md, "Differential oracle & fuzzing").

The debug plan attaches either watchpoints **or** breakpoints, never
both: when a breakpoint fires in the same debugger transition as a
watched-value change, single-stepping merges the two stops into one
while trap-per-event backends report two — a genuine mechanism
difference, not a bug, so the oracle does not generate it.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program

# -- register plan -----------------------------------------------------------
POOL_REGS = tuple(range(1, 13))  # general-purpose value soup
R_SCRATCH_BASE = 13
R_SCRATCH_IDX = 14
R_TMP = 16  # comparisons, silent-store temporaries
R_SUM_A, R_SUM_B = 17, 18  # self-checking epilogue accumulators
R_INNER = 19  # inner-loop countdown
R_OUTER, R_OUTER_CMP = 20, 21  # outer-loop counter and test

ALU_OPS = ("addq", "subq", "mulq", "and", "bis", "xor", "bic")
SHIFT_OPS = ("sll", "srl", "sra")
CMP_OPS = ("cmpeq", "cmplt", "cmple", "cmpult", "cmpule")
BRANCH_OPS = ("beq", "bne", "blt", "bge", "ble", "bgt")
CONDITION_OPS = ("==", "!=", "<", "<=", ">", ">=")
STORE_SIZES = (8, 4, 2, 1)

SCRATCH_QUADS = 8  # masked scratch array (power of two)
STACK_SLOTS = 4  # sp-relative store window: 0(sp)..24(sp)


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape of generated programs."""

    blocks: int = 4
    min_ops: int = 6  # per block
    max_ops: int = 14
    min_iterations: int = 2  # outer loop
    max_iterations: int = 6
    inner_loop_prob: float = 0.25
    max_inner_iterations: int = 4
    store_density: float = 0.30
    branch_density: float = 0.15
    load_density: float = 0.20
    silent_store_prob: float = 0.15  # of stores: re-store the same value
    subword_fraction: float = 0.30  # of scratch stores: 1/2/4-byte sizes
    num_vars: int = 4
    max_watchpoints: int = 3
    max_breakpoints: int = 2
    condition_prob: float = 0.4
    epilogue: bool = True


@dataclass
class BodyOp:
    """One generated operation; ``kind`` selects the render rule."""

    kind: str
    args: dict = field(default_factory=dict)


@dataclass
class Block:
    """A run of body ops; optionally a bounded inner countdown loop."""

    ops: list[BodyOp] = field(default_factory=list)
    inner_iterations: int = 0  # 0 = straight-line block


@dataclass
class DebugPoint:
    """One watchpoint (on ``var``) or breakpoint (on ``block``)."""

    kind: str  # "watch" | "break"
    target: str  # variable name or block label
    condition: Optional[str] = None


@dataclass
class ProgramSpec:
    """A renderable, shrinkable, JSON-serializable program description."""

    seed: int
    reg_init: dict[int, int] = field(default_factory=dict)
    var_init: dict[str, int] = field(default_factory=dict)
    blocks: list[Block] = field(default_factory=list)
    iterations: int = 2
    points: list[DebugPoint] = field(default_factory=list)
    epilogue: bool = True
    inject: Optional[str] = None  # named fault injection (see fuzz.inject)

    @property
    def mode(self) -> str:
        """``"watch"`` or ``"break"`` (specs never mix the two)."""
        return self.points[0].kind if self.points else "watch"

    @property
    def watch_vars(self) -> list[str]:
        return [p.target for p in self.points if p.kind == "watch"]

    def to_dict(self) -> dict:
        """JSON-ready plain-data form (inverse of :meth:`from_dict`)."""
        data = asdict(self)
        data["reg_init"] = {str(k): v for k, v in self.reg_init.items()}
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProgramSpec":
        return cls(
            seed=data["seed"],
            reg_init={int(k): v for k, v in data["reg_init"].items()},
            var_init=dict(data["var_init"]),
            blocks=[Block(ops=[BodyOp(o["kind"], dict(o["args"]))
                               for o in b["ops"]],
                          inner_iterations=b["inner_iterations"])
                    for b in data["blocks"]],
            iterations=data["iterations"],
            points=[DebugPoint(p["kind"], p["target"], p.get("condition"))
                    for p in data["points"]],
            epilogue=data.get("epilogue", True),
            inject=data.get("inject"),
        )


def generate_spec(seed: int,
                  config: Optional[GeneratorConfig] = None) -> ProgramSpec:
    """Generate the spec for ``seed`` (bit-reproducible from the seed)."""
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)
    spec = ProgramSpec(
        seed=seed,
        reg_init={reg: rng.randrange(0, 1 << 12) for reg in POOL_REGS},
        var_init={f"v{i}": rng.randrange(1, 100)
                  for i in range(cfg.num_vars)},
        iterations=rng.randint(cfg.min_iterations, cfg.max_iterations),
        epilogue=cfg.epilogue,
    )
    for index in range(cfg.blocks):
        inner = (rng.randint(2, cfg.max_inner_iterations)
                 if rng.random() < cfg.inner_loop_prob else 0)
        block = Block(inner_iterations=inner)
        for _ in range(rng.randint(cfg.min_ops, cfg.max_ops)):
            block.ops.append(_generate_op(rng, cfg, list(spec.var_init)))
        spec.blocks.append(block)
    spec.points = _generate_points(rng, cfg, spec)
    return spec


def _generate_op(rng: random.Random, cfg: GeneratorConfig,
                 variables: list[str]) -> BodyOp:
    roll = rng.random()
    if roll < cfg.store_density:
        return _generate_store(rng, cfg, variables)
    roll -= cfg.store_density
    if roll < cfg.branch_density:
        return BodyOp("branch_skip", {
            "rs": rng.choice(POOL_REGS),
            "cmp": rng.choice(CMP_OPS),
            "imm": rng.randrange(0, 1 << 10),
            "br": rng.choice(("beq", "bne")),
            "skip": rng.randint(1, 4),
        })
    roll -= cfg.branch_density
    if roll < cfg.load_density:
        if rng.random() < 0.5 and variables:
            return BodyOp("load_var", {"rd": rng.choice(POOL_REGS),
                                       "var": rng.choice(variables)})
        return BodyOp("load_scratch", {"rd": rng.choice(POOL_REGS),
                                       "stride": rng.choice((1, 3, 5, 7))})
    if rng.random() < 0.3:
        return BodyOp("shift", {"op": rng.choice(SHIFT_OPS),
                                "rd": rng.choice(POOL_REGS),
                                "rs": rng.choice(POOL_REGS),
                                "amount": rng.randrange(0, 16)})
    src_is_reg = rng.random() < 0.5
    src = (rng.choice(POOL_REGS) if src_is_reg
           else rng.randrange(0, 1 << 10))
    return BodyOp("alu", {"op": rng.choice(ALU_OPS),
                          "rd": rng.choice(POOL_REGS),
                          "rs": rng.choice(POOL_REGS),
                          "src": src,
                          "src_is_reg": src_is_reg})


def _generate_store(rng: random.Random, cfg: GeneratorConfig,
                    variables: list[str]) -> BodyOp:
    target_roll = rng.random()
    if target_roll < 0.45 and variables:
        var = rng.choice(variables)
        if rng.random() < cfg.silent_store_prob:
            # Reload then re-store the same value: guaranteed silent.
            return BodyOp("silent_store", {"var": var})
        return BodyOp("store_var", {"rs": rng.choice(POOL_REGS),
                                    "var": var})
    if target_roll < 0.75:
        size = (rng.choice(STORE_SIZES[1:])
                if rng.random() < cfg.subword_fraction else 8)
        return BodyOp("store_scratch", {"rs": rng.choice(POOL_REGS),
                                        "size": size,
                                        "stride": rng.choice((1, 3, 5, 7))})
    return BodyOp("store_stack", {"rs": rng.choice(POOL_REGS),
                                  "slot": rng.randrange(0, STACK_SLOTS)})


def _generate_points(rng: random.Random, cfg: GeneratorConfig,
                     spec: ProgramSpec) -> list[DebugPoint]:
    variables = list(spec.var_init)
    if rng.random() < 0.5 or cfg.max_breakpoints == 0:
        count = rng.randint(1, min(cfg.max_watchpoints, len(variables)))
        targets = rng.sample(variables, count)
        points = []
        for var in targets:
            condition = None
            if rng.random() < cfg.condition_prob:
                # Conditions stay in the DISE-compilable intersection:
                # the watched variable compared against a constant.
                condition = (f"{var} {rng.choice(CONDITION_OPS)} "
                             f"{rng.randrange(0, 1 << 12)}")
            points.append(DebugPoint("watch", var, condition))
        return points
    count = rng.randint(1, min(cfg.max_breakpoints, len(spec.blocks)))
    labels = rng.sample([block_label(i) for i in range(len(spec.blocks))],
                        count)
    points = []
    for label in sorted(labels):
        condition = None
        if rng.random() < cfg.condition_prob:
            condition = (f"{rng.choice(variables)} "
                         f"{rng.choice(CONDITION_OPS)} "
                         f"{rng.randrange(0, 1 << 12)}")
        points.append(DebugPoint("break", label, condition))
    return points


def block_label(index: int) -> str:
    """Label of block ``index`` (breakpoint anchor site)."""
    return f"block_{index}"


# -- rendering ---------------------------------------------------------------


def build_program(spec: ProgramSpec) -> Program:
    """Render ``spec`` to a finalized :class:`Program`.

    Deterministic: the same spec always renders the same instruction
    list, which is what makes shrinking and golden traces meaningful.
    """
    b = CodeBuilder(f"fuzz-{spec.seed}")
    for name, value in spec.var_init.items():
        b.data_quad(name, value)
    if spec.epilogue:
        b.data_quad("checksum", 0)
    b.data_space("fuzz_scratch", SCRATCH_QUADS * 8)

    b.label("main")
    for reg, value in sorted(spec.reg_init.items()):
        if _spec_uses_reg(spec, reg):
            b.lda(reg, value, "zero")
    if _spec_uses_scratch(spec):
        b.lda(R_SCRATCH_BASE, "fuzz_scratch")
        b.lda(R_SCRATCH_IDX, 0, "zero")
    looped = spec.iterations > 1
    if looped:
        b.lda(R_OUTER, 0, "zero")
        b.label("loop_top")
    for index, block in enumerate(spec.blocks):
        b.label(block_label(index))
        # The breakpoint anchor: a no-effect ALU instruction, so a
        # breakpoint production never replaces (and thereby shadows) a
        # store or branch, and nop elision cannot skew accounting.
        b.addq("zero", 0, "zero")
        if block.inner_iterations > 0:
            b.lda(R_INNER, block.inner_iterations, "zero")
            b.label(f"inner_{index}")
        _render_ops(b, index, block.ops)
        if block.inner_iterations > 0:
            b.subq(R_INNER, 1, R_INNER)
            b.bne(R_INNER, f"inner_{index}")

    if looped:
        b.addq(R_OUTER, 1, R_OUTER)
        b.cmpult(R_OUTER, spec.iterations, R_OUTER_CMP)
        b.bne(R_OUTER_CMP, "loop_top")

    if spec.epilogue:
        _render_epilogue(b, spec)
    b.halt()

    # Instruction-granularity statements: the single-step backend then
    # observes memory immediately after every store, aligning its stop
    # points with the trap-per-store backends.
    b.statement_starts = set(range(len(b.instructions)))
    b._pending_statement = False
    return b.build(entry="main")


def _spec_uses_reg(spec: ProgramSpec, reg: int) -> bool:
    for block in spec.blocks:
        for op in block.ops:
            if reg in (op.args.get("rd"), op.args.get("rs")):
                return True
            if op.args.get("src_is_reg") and op.args.get("src") == reg:
                return True
    # The epilogue folds every initialized pool register.
    return spec.epilogue


def _spec_uses_scratch(spec: ProgramSpec) -> bool:
    return any(op.kind in ("load_scratch", "store_scratch")
               for block in spec.blocks for op in block.ops)


def _render_ops(b: CodeBuilder, block_index: int,
                ops: list[BodyOp]) -> None:
    pending_skips: list[tuple[int, str]] = []  # (ops remaining, label)
    for position, op in enumerate(ops):
        _render_op(b, op, f"b{block_index}_{position}", pending_skips,
                   remaining=len(ops) - position - 1)
        next_pending = []
        for count, label in pending_skips:
            if count <= 1:
                b.label(label)
            else:
                next_pending.append((count - 1, label))
        pending_skips = next_pending
    for _, label in pending_skips:
        b.label(label)


def _render_op(b: CodeBuilder, op: BodyOp, tag: str,
               pending_skips: list[tuple[int, str]], remaining: int) -> None:
    args = op.args
    if op.kind == "alu":
        middle = (f"r{args['src']}" if args.get("src_is_reg")
                  else int(args["src"]))
        b.op(args["op"], f"r{args['rs']}", middle, f"r{args['rd']}")
    elif op.kind == "shift":
        b.op(args["op"], f"r{args['rs']}", int(args["amount"]),
             f"r{args['rd']}")
    elif op.kind == "load_var":
        b.ldq(args["rd"], args["var"])
    elif op.kind == "load_scratch":
        _advance_scratch_index(b, args["stride"])
        b.ldq(args["rd"], 0, R_TMP)
    elif op.kind == "store_var":
        # Halve before storing: watched variables then always hold
        # values < 2**63, on which the signed inline comparisons DISE
        # compiles (cmplt/cmple) agree with the debugger's unsigned
        # expression evaluation.  Without this, inequality conditions
        # would diverge across backends by modeling choice, not by bug.
        b.srl(args["rs"], 1, R_TMP)
        b.stq(R_TMP, args["var"])
    elif op.kind == "silent_store":
        b.ldq(R_TMP, args["var"])
        b.stq(R_TMP, args["var"])
    elif op.kind == "store_scratch":
        _advance_scratch_index(b, args["stride"])
        store = {8: b.stq, 4: b.stl, 2: b.stw, 1: b.stb}[args["size"]]
        store(args["rs"], 0, R_TMP)
    elif op.kind == "store_stack":
        b.stq(args["rs"], args["slot"] * 8, "sp")
    elif op.kind == "branch_skip":
        skip = min(args["skip"], remaining)
        if skip <= 0:
            return  # nothing left to skip over; elide the branch
        b.op(args["cmp"], f"r{args['rs']}", int(args["imm"]), R_TMP)
        label = f"skip_{tag}"
        b.op(args["br"], R_TMP, label)
        pending_skips.append((skip, label))
    else:
        raise ValueError(f"unknown body op kind {op.kind!r}")


def _advance_scratch_index(b: CodeBuilder, stride: int) -> None:
    """Bump the masked scratch index; leave the address in R_TMP."""
    mask = SCRATCH_QUADS * 8 - 1
    b.addq(R_SCRATCH_IDX, stride, R_SCRATCH_IDX)
    b.and_(R_SCRATCH_IDX, mask & ~7, R_SCRATCH_IDX)
    b.addq(R_SCRATCH_BASE, f"r{R_SCRATCH_IDX}", R_TMP)


def _render_epilogue(b: CodeBuilder, spec: ProgramSpec) -> None:
    """Fold registers and variables into a stored checksum.

    The checksum makes final-state divergence observable through a
    single memory word even if a comparison elsewhere were relaxed.
    """
    b.lda(R_SUM_A, 0, "zero")
    for reg in sorted(spec.reg_init):
        b.xor(R_SUM_A, f"r{reg}", R_SUM_A)
        b.addq(R_SUM_A, 1, R_SUM_A)
    for name in spec.var_init:
        b.ldq(R_SUM_B, name)
        b.xor(R_SUM_A, f"r{R_SUM_B}", R_SUM_A)
    b.stq(R_SUM_A, "checksum")


def static_instruction_count(spec: ProgramSpec) -> int:
    """Static length of the rendered text segment."""
    return len(build_program(spec).instructions)


def dynamic_budget(spec: ProgramSpec) -> int:
    """A safe application-instruction cap for one run of ``spec``.

    Generous upper bound used as the machine run limit: a run that
    reaches it did not terminate (a generator bug), which the oracle
    reports as a failure rather than hanging.
    """
    per_pass = 0
    for block in spec.blocks:
        body = 6 * len(block.ops) + 4
        per_pass += body * max(1, block.inner_iterations)
    per_pass += 8
    total = per_pass * max(1, spec.iterations)
    total += 4 * len(spec.reg_init) + 3 * len(spec.var_init) + 32
    return 4 * total + 10_000
