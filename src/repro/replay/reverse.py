"""Reverse execution over checkpoints + deterministic re-execution.

The controller wraps one interactive debugger backend.  Going forward,
every ``resume`` records the user stops it produces and annotates each
auto-checkpoint with the number of stops that preceded it.  Going
backward is then bookkeeping:

* ``reverse_continue`` from the k-th stop restores the newest
  checkpoint known to precede stop k-1 and resumes (stopping at user
  transitions) until stop k-1 re-fires;
* ``reverse_step`` restores the newest checkpoint at or before the
  target instruction count and re-executes up to it, re-recording any
  stops passed through.

Determinism makes the replayed stops identical to the original ones —
same PC, same instruction count, same architectural state — which the
test suite asserts via ``state_fingerprint()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.replay.checkpoint import Checkpoint, CheckpointStore

DEFAULT_INTERVAL = 10_000


@dataclass(frozen=True)
class StopRecord:
    """Canonical record of one user stop."""

    ordinal: int  # 0-based stop number
    app_instructions: int
    pc: int
    fingerprint: str = ""  # architectural digest (when recording enabled)
    process: str = ""  # which process the stop landed in (multi-process)

    def describe(self) -> str:
        """One-line human-readable summary of the stop."""
        where = f" in {self.process}" if self.process else ""
        return (f"stop #{self.ordinal} at pc={self.pc:#x}{where} "
                f"({self.app_instructions:,} instructions)")


class ReverseController:
    """Forward/backward execution of one interactive backend."""

    def __init__(self, backend, *, interval: int = DEFAULT_INTERVAL,
                 capacity: int = 64, record_fingerprints: bool = False):
        self.backend = backend
        self.machine = backend.machine
        self.machine.stop_on_user = True
        self.record_fingerprints = record_fingerprints
        self.stops: list[StopRecord] = []
        self.store: CheckpointStore = self.machine.enable_checkpoints(
            interval=interval, store=CheckpointStore(capacity),
            snapshot_fn=backend.snapshot)
        # Genesis checkpoint: reverse execution can always reach the
        # state the controller started from.
        self.store.add(Checkpoint(self.machine.stats.app_instructions,
                                  backend.snapshot(), {"stops_seen": 0}))

    # -- forward execution -------------------------------------------------

    def resume(self, max_app_instructions: Optional[int] = None):
        """Run forward; record the stop (if any) and annotate new
        checkpoints with the stop count at the start of this run.

        Checkpoints are only taken while running, i.e. strictly before
        the stop that ends the run fires — so a checkpoint annotated
        ``stops_seen = n`` precedes stop ``n``.
        """
        stops_before = len(self.stops)
        result = self.backend.run(max_app_instructions)
        for checkpoint in self.store:
            checkpoint.meta.setdefault("stops_seen", stops_before)
        if result.stopped_at_user:
            machine = self.machine
            self.stops.append(StopRecord(
                ordinal=stops_before,
                app_instructions=machine.stats.app_instructions,
                pc=machine.pc,
                fingerprint=(machine.state_fingerprint()
                             if self.record_fingerprints else ""),
                # Name the stopped process only on multi-process
                # machines, so single-process stop descriptions (and
                # recorded golden transcripts) are unchanged.
                process=(machine.current_process
                         if machine._kernel is not None else "")))
        return result

    # -- backward execution ------------------------------------------------

    def reverse_continue(self) -> Optional[StopRecord]:
        """Rewind from the current stop to the previous one.

        Returns the re-landed :class:`StopRecord` (ordinal k-1 when
        called at stop k), or None when there is no earlier stop — in
        that case the machine rewinds to the controller's genesis state
        (the start of recorded history, like gdb's reverse-continue
        running off the beginning).  When the machine is *past* the
        last stop (halted, or paused by an instruction budget), the
        previous stop is the last recorded one.
        """
        machine = self.machine
        at_last_stop = bool(
            self.stops and machine.stopped_at_user
            and machine.stats.app_instructions
            == self.stops[-1].app_instructions)
        target = len(self.stops) - (2 if at_last_stop else 1)
        if target < 0:
            self._restore_checkpoint(self.store.oldest)
            return None
        checkpoint = self.store.nearest_at_or_before(
            self.machine.stats.app_instructions,
            predicate=lambda c: c.meta.get("stops_seen", 0) <= target)
        if checkpoint is None:
            checkpoint = self.store.oldest
        self._restore_checkpoint(checkpoint)
        resumes = target + 1 - checkpoint.meta.get("stops_seen", 0)
        for _ in range(resumes):
            result = self.resume()
            if not result.stopped_at_user:
                raise ReplayDivergenceError(
                    f"re-execution toward stop #{target} "
                    f"{'halted' if result.halted else 'ended'} after "
                    f"{len(self.stops)} stops — the recorded history no "
                    f"longer reproduces (non-deterministic handler?)")
        return self.stops[-1]

    def reverse_step(self, instructions: int = 1) -> None:
        """Rewind the machine by ``instructions`` application
        instructions (to the start of recorded history at most)."""
        self.seek(self.machine.stats.app_instructions - instructions)

    def seek(self, app_instructions: int) -> None:
        """Move the machine to an exact application-instruction count.

        Seeking backward restores the nearest checkpoint at or before
        the target and re-executes the remainder; seeking forward just
        resumes.  Either way stops passed through are re-recorded, so
        history stays consistent (``reverse_step`` is ``seek`` relative
        to the current position).  Targets before the genesis
        checkpoint clamp to the start of recorded history.
        """
        machine = self.machine
        target = max(app_instructions,
                     self.store.oldest.app_instructions)
        if target < machine.stats.app_instructions:
            checkpoint = self.store.nearest_at_or_before(target)
            if checkpoint is None:
                checkpoint = self.store.oldest
            self._restore_checkpoint(checkpoint)
        while machine.stats.app_instructions < target:
            result = self.resume(target)
            if result.halted:
                break
            if not result.stopped_at_user:
                break  # limit reached: we are at the target

    def _restore_checkpoint(self, checkpoint: Checkpoint) -> None:
        self.backend.restore(checkpoint.blob)
        self.store.trim_after(checkpoint.app_instructions)
        del self.stops[checkpoint.meta.get("stops_seen", 0):]
        # The backend blob may predate interactive mode; re-assert it.
        self.machine.stop_on_user = True

    # -- introspection -----------------------------------------------------

    @property
    def current_stop(self) -> Optional[StopRecord]:
        return self.stops[-1] if self.stops else None

    def checkpoint_now(self, note: str = "") -> Checkpoint:
        """Take an explicit checkpoint of the current state."""
        meta = {"stops_seen": len(self.stops)}
        if note:
            meta["note"] = note
        return self.store.add(Checkpoint(
            self.machine.stats.app_instructions,
            self.backend.snapshot(), meta))


class ReplayDivergenceError(RuntimeError):
    """Deterministic re-execution failed to reproduce recorded stops."""
