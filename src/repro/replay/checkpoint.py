"""Checkpoints of a running machine.

A :class:`Checkpoint` pairs an opaque machine snapshot blob with the
application-instruction count at which it was taken, plus a small
metadata dict that higher layers annotate (the reverse-execution
controller records how many user stops preceded each checkpoint).

Blobs come from ``Machine.snapshot()`` (or a backend's ``snapshot()``,
which wraps it): they are copy-on-write against live memory, so holding
many checkpoints of a mostly-idle footprint costs O(dirty pages), and
they reference live Python objects (productions, watchpoints), which
restricts restore to the same process and the same machine instance.

:class:`CheckpointStore` keeps checkpoints ordered by instruction count
and bounds its population by *thinning*: when capacity is exceeded it
drops every other interior checkpoint, halving density while preserving
the full time range — old history gets coarser, never truncated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass
class Checkpoint:
    """One restorable point in a run."""

    app_instructions: int
    blob: Any
    meta: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Checkpoint(app_instructions={self.app_instructions}, "
                f"meta={self.meta})")


class CheckpointStore:
    """An ordered, capacity-bounded collection of checkpoints."""

    def __init__(self, capacity: int = 64):
        if capacity < 2:
            raise ValueError(f"capacity {capacity} < 2")
        self.capacity = capacity
        self._checkpoints: list[Checkpoint] = []

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __iter__(self) -> Iterator[Checkpoint]:
        return iter(self._checkpoints)

    @property
    def checkpoints(self) -> tuple[Checkpoint, ...]:
        return tuple(self._checkpoints)

    def add(self, checkpoint: Checkpoint) -> Checkpoint:
        """Append a checkpoint (instruction counts must not decrease)."""
        if (self._checkpoints and checkpoint.app_instructions
                < self._checkpoints[-1].app_instructions):
            raise ValueError(
                f"checkpoint at {checkpoint.app_instructions} precedes "
                f"newest at {self._checkpoints[-1].app_instructions}")
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.capacity:
            self._thin()
        return checkpoint

    def _thin(self) -> None:
        """Halve density: keep even indices plus the newest."""
        kept = self._checkpoints[::2]
        if kept[-1] is not self._checkpoints[-1]:
            kept.append(self._checkpoints[-1])
        self._checkpoints = kept

    def nearest_at_or_before(self, app_instructions: int,
                             predicate=None) -> Optional[Checkpoint]:
        """Newest checkpoint with ``app_instructions <= bound`` (and
        satisfying ``predicate`` when given), or None."""
        for checkpoint in reversed(self._checkpoints):
            if checkpoint.app_instructions > app_instructions:
                continue
            if predicate is None or predicate(checkpoint):
                return checkpoint
        return None

    def trim_after(self, app_instructions: int) -> None:
        """Drop checkpoints newer than ``app_instructions``.

        Called after a restore: checkpoints from the abandoned future
        describe machine states the re-execution may never revisit
        identically (the debugger may change plans), so they go.
        """
        self._checkpoints = [
            checkpoint for checkpoint in self._checkpoints
            if checkpoint.app_instructions <= app_instructions]

    def clear(self) -> None:
        """Drop every held checkpoint."""
        self._checkpoints.clear()

    @property
    def newest(self) -> Optional[Checkpoint]:
        return self._checkpoints[-1] if self._checkpoints else None

    @property
    def oldest(self) -> Optional[Checkpoint]:
        return self._checkpoints[0] if self._checkpoints else None
