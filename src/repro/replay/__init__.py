"""Checkpointing and deterministic replay.

Everything with mutable simulator state — :class:`~repro.cpu.machine.
Machine` and its components, and the debugger backends — implements the
:class:`Snapshotable` protocol: ``snapshot()`` captures state as an
opaque blob, ``restore(blob)`` rewinds to it, and (for the classes where
a differential identity is meaningful) ``state_fingerprint()`` digests
the architectural state.  Because the interpreter is deterministic,
restore + re-execute reproduces a run bit-for-bit; that one property
powers everything in this package:

* :class:`Checkpoint` / :class:`CheckpointStore` — periodic snapshots
  taken automatically during ``Machine.run``;
* :class:`ReverseController` — ``reverse-continue`` / ``reverse-step``
  as restore-nearest-checkpoint + deterministic re-execution;
* harness warm-start (see :mod:`repro.harness.experiment`) — experiment
  cells sharing a warm-up prefix resume from a persisted checkpoint.

See DESIGN.md, "Checkpoint & deterministic replay".
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.replay.reverse import ReverseController, StopRecord


@runtime_checkable
class Snapshotable(Protocol):
    """The uniform capture/restore interface of mutable simulator state."""

    def snapshot(self) -> Any:
        """Capture mutable state as an opaque blob."""
        ...

    def restore(self, blob: Any) -> None:
        """Rewind to a previously captured blob (which stays valid)."""
        ...


__all__ = ["Snapshotable", "Checkpoint", "CheckpointStore",
           "ReverseController", "StopRecord"]
