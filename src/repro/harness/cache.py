"""Persistent on-disk experiment result cache.

Results live as one JSON file per cell under ``.repro_cache/``
(configurable via ``REPRO_CACHE_DIR``; disable with ``REPRO_CACHE=0``).
Each file is keyed by a content hash of the cell's identity —
benchmark, backend, scenario (watchpoint kind, conditional flag,
expressions, backend options, machine config), the
:class:`~repro.harness.experiment.ExperimentSettings`, and the current
*code version* (a content hash of every ``repro`` source file).  A
re-run after an interrupt or a config tweak therefore recomputes only
the invalidated cells; editing the simulator invalidates everything.

The wire format is :meth:`repro.results.RunResult.to_dict` wrapped in a
small envelope that echoes the key payload and the code version.  A
stored record whose code version does not match the current tree is
treated as a *miss*, never an error — as is any unreadable or
truncated file — so a stale or hand-edited cache can only cost time,
not correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.config import cache_enabled, default_cache_dir
from repro.results import RunResult

CACHE_FORMAT = 1

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the ``repro`` package sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def default_cache() -> "ResultCache":
    """The environment-configured cache (possibly disabled)."""
    return ResultCache(default_cache_dir(), enabled=cache_enabled())


class ResultCache:
    """A directory of content-addressed :class:`RunResult` records."""

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 enabled: bool = True):
        self.directory = Path(directory) if directory else \
            Path(default_cache_dir())
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, payload: dict) -> str:
        """Content hash of a cell-identity payload (plus code version)."""
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        digest = hashlib.sha256()
        digest.update(code_version().encode())
        digest.update(b"\0")
        digest.update(canonical.encode())
        return digest.hexdigest()[:32]

    def path_for(self, key: str) -> Path:
        """Filesystem location of a key's record."""
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[RunResult]:
        """The stored result for ``key``, or ``None`` on any miss.

        Corrupt files and records written by a different code version
        are misses, not errors.
        """
        if not self.enabled:
            return None
        try:
            record = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (not isinstance(record, dict)
                or record.get("format") != CACHE_FORMAT
                or record.get("code_version") != code_version()):
            self.misses += 1
            return None
        try:
            result = RunResult.from_dict(record["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        result.from_cache = True
        self.hits += 1
        return result

    def store(self, key: str, result: RunResult,
              payload: Optional[dict] = None) -> None:
        """Persist ``result`` under ``key`` (atomic write-and-rename)."""
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {
            "format": CACHE_FORMAT,
            "code_version": code_version(),
            "key": payload,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True, default=repr)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def default_timeline_cache() -> "TimelineQueryCache":
    """The environment-configured timeline query cache."""
    return TimelineQueryCache(default_cache_dir(), enabled=cache_enabled())


class TimelineQueryCache:
    """Persisted time-travel query answers.

    Records live as JSON under ``<cache_dir>/timeline/``, keyed by a
    content hash of the query identity — program content digest,
    backend, machine config, debug plan, the recorded-history extent
    (genesis/position/stop count), the query verb and its arguments —
    plus the code version.  Deterministic replay makes a hit exact: the
    same history extent under the same code can only re-derive the same
    answer, fingerprint included.  As with :class:`ResultCache`, any
    unreadable, truncated, or version-mismatched record is a miss,
    never an error.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 enabled: bool = True):
        base = Path(directory) if directory else Path(default_cache_dir())
        self.directory = base / "timeline"
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, payload: dict) -> str:
        """Content hash of a query-identity payload (plus code version)."""
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        digest = hashlib.sha256()
        digest.update(code_version().encode())
        digest.update(b"\0")
        digest.update(canonical.encode())
        return digest.hexdigest()[:32]

    def path_for(self, key: str) -> Path:
        """Filesystem location of a key's record."""
        return self.directory / f"{key}.json"

    def load(self, key: str):
        """The stored :class:`~repro.timetravel.QueryResult` for
        ``key``, or ``None`` on any miss."""
        from repro.timetravel.engine import QueryResult

        if not self.enabled:
            return None
        try:
            record = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (not isinstance(record, dict)
                or record.get("format") != CACHE_FORMAT
                or record.get("code_version") != code_version()):
            self.misses += 1
            return None
        try:
            result = QueryResult.from_dict(record["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result, payload: Optional[dict] = None) -> None:
        """Persist a query result under ``key`` (atomic write-and-rename)."""
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {
            "format": CACHE_FORMAT,
            "code_version": code_version(),
            "key": payload,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True, default=repr)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def default_warm_cache() -> "WarmCheckpointCache":
    """The environment-configured warm-checkpoint store."""
    return WarmCheckpointCache(default_cache_dir(), enabled=cache_enabled())


class WarmCheckpointCache:
    """Persisted post-warm-up machine checkpoints.

    Blobs live as pickles under ``<cache_dir>/checkpoints/``, keyed by
    a content hash of the *shared prefix identity* — benchmark, machine
    config, warm-up instruction count, timing fidelity — plus the code
    version.  Every experiment cell that differs only in its debug plan
    (backend, watchpoints, options) shares one prefix blob and resumes
    from it instead of re-simulating the warm-up interval.

    Only checkpoints of *undebugged* machines are stored here: those
    blobs are plain data (no live productions or handler closures) and
    pickle cleanly.  As with :class:`ResultCache`, any unreadable,
    truncated, or version-mismatched file is a miss, never an error.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 enabled: bool = True):
        base = Path(directory) if directory else Path(default_cache_dir())
        self.directory = base / "checkpoints"
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, payload: dict) -> str:
        """Content hash of a prefix-identity payload (plus code version)."""
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        digest = hashlib.sha256()
        digest.update(code_version().encode())
        digest.update(b"\0")
        digest.update(canonical.encode())
        return digest.hexdigest()[:32]

    def path_for(self, key: str) -> Path:
        """Filesystem location of a key's pickled checkpoint."""
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Optional[object]:
        """The stored checkpoint blob for ``key``, or ``None`` on miss."""
        if not self.enabled:
            return None
        try:
            payload = self.path_for(key).read_bytes()
            record = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any corruption is a miss
            self.misses += 1
            return None
        if (not isinstance(record, dict)
                or record.get("code_version") != code_version()):
            self.misses += 1
            return None
        self.hits += 1
        return record.get("blob")

    def store(self, key: str, blob: object) -> None:
        """Persist ``blob`` under ``key`` (atomic write-and-rename)."""
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {"code_version": code_version(), "blob": blob}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every stored checkpoint; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.pkl"))
