"""Text reporting helpers shared by the CLI and EXPERIMENTS.md tooling."""

from __future__ import annotations

from typing import Iterable

from repro.harness.figures import FigureResult, format_figure
from repro.harness.runner import RunReport
from repro.harness.tables import (BenchmarkCharacterization, format_table1,
                                  format_table2)


def render(results: Iterable) -> str:
    """Render a mixed list of figure/table results."""
    parts = []
    for result in results:
        if isinstance(result, FigureResult):
            parts.append(format_figure(result))
            if result.report is not None:
                parts.append(render_report(result.report))
        elif isinstance(result, RunReport):
            parts.append(render_report(result))
        elif isinstance(result, list) and result and isinstance(
                result[0], BenchmarkCharacterization):
            parts.append(format_table1(result))
            parts.append(format_table2(result))
        else:
            parts.append(str(result))
    return "\n\n".join(parts)


def render_report(report: RunReport) -> str:
    """One-line engine telemetry (cells computed/cached/failed, rate)."""
    return f"[engine] {report.summary()}"


def render_distribution(result: FigureResult, *, bins: int = 10) -> str:
    """Distributional overhead report for a corpus sweep.

    Per backend: median/p95/p99/range one-liner plus a histogram of
    the overhead factors (log-spaced bins when the spread warrants).
    """
    from repro.analysis.summary import overhead_distributions
    from repro.analysis.textchart import render_histogram

    distributions = overhead_distributions(result)
    if not distributions:
        return f"{result.name}: no supported cells"
    lines = [f"{result.name}: {result.description}",
             "overhead distribution per backend:"]
    for backend, dist in distributions.items():
        lines.append("  " + dist.describe())
    for backend, dist in distributions.items():
        overheads = [c.overhead for c in result.cells
                     if c.backend == backend and c.overhead is not None]
        lines.append(render_histogram(overheads, bins=bins,
                                      title=f"{backend} overhead factors"))
    return "\n".join(lines)


def headline_summary(fig3: FigureResult) -> str:
    """The paper's abstract claims, checked against measured data.

    * single-stepping slows programs by thousands to tens of thousands
      of times;
    * DISE "typically limits debugging overhead to 25% or less".
    """
    single_step = [c.overhead for c in fig3.cells
                   if c.backend == "single_step" and c.overhead]
    dise = [c.overhead for c in fig3.cells
            if c.backend == "dise" and c.overhead]
    dise_typical = sorted(dise)[len(dise) // 2] if dise else float("nan")
    lines = [
        "Headline claims vs measurement:",
        f"  single-stepping slowdown: {min(single_step):,.0f}x - "
        f"{max(single_step):,.0f}x (paper: 6,000x - 40,000x)",
        f"  DISE overhead: median {dise_typical - 1:.1%}, max "
        f"{max(dise) - 1:.1%} (paper: typically <= 25%)",
    ]
    return "\n".join(lines)
