"""The ``dise-repro`` command-line tool.

Regenerates any table or figure of the paper::

    dise-repro table1
    dise-repro fig3 --scale 2.0
    dise-repro all

``--scale`` multiplies the per-cell instruction budgets (default taken
from the ``REPRO_SCALE`` environment variable, default 1.0).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiment import ExperimentSettings
from repro.harness.figures import (figure3, figure4, figure5, figure6,
                                   figure7, figure8, figure9, format_figure)
from repro.harness.report import headline_summary
from repro.harness.tables import (format_table1, format_table2, table1)

_FIGURES = {
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
}

_TARGETS = ("table1", "table2", *_FIGURES, "headline", "all")


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and regenerate the requested exhibits."""
    parser = argparse.ArgumentParser(
        prog="dise-repro",
        description="Regenerate tables/figures of 'Low-Overhead "
                    "Interactive Debugging via Dynamic Instrumentation "
                    "with DISE' (HPCA-11, 2005)")
    parser.add_argument("target", choices=_TARGETS,
                        help="which exhibit to regenerate")
    parser.add_argument("--scale", type=float, default=None,
                        help="instruction-budget multiplier")
    parser.add_argument("--chart", action="store_true",
                        help="render figures as log-scale text bars")
    parser.add_argument("--summary", action="store_true",
                        help="append per-backend geomean summaries")
    args = parser.parse_args(argv)
    settings = ExperimentSettings.scaled(args.scale)

    started = time.time()
    targets = (["table1", *_FIGURES, "headline"] if args.target == "all"
               else [args.target])
    for target in targets:
        _run_target(target, settings, chart=args.chart,
                    summary=args.summary)
    print(f"\n[{time.time() - started:.1f}s]", file=sys.stderr)
    return 0


def _run_target(target: str, settings: ExperimentSettings,
                chart: bool = False, summary: bool = False) -> None:
    if target in ("table1", "table2"):
        rows = table1(settings)
        print(format_table1(rows) if target == "table1"
              else format_table2(rows))
        return
    if target == "headline":
        print(headline_summary(figure3(settings)))
        return
    result = _FIGURES[target](settings)
    if chart:
        from repro.analysis import render_chart
        print(render_chart(result))
    else:
        print(format_figure(result))
    if summary:
        from repro.analysis import summarize_figure
        print()
        print(summarize_figure(result, baseline_backend="dise"
                               if any(c.backend == "dise"
                                      for c in result.cells) else None))


if __name__ == "__main__":
    raise SystemExit(main())
