"""The ``dise-repro`` command-line tool.

Regenerates any table or figure of the paper::

    dise-repro table1
    dise-repro fig3 --scale 2.0
    dise-repro fig3 --workers 4 --progress     # parallel engine
    dise-repro corpus --corpus full --corpus-size 200
    dise-repro all

The ``corpus`` target sweeps a program corpus (``--corpus``: the
``programs/*.s`` workloads, the named benchmarks, fuzz-generated
programs, or all three) across every debugger backend and prints the
per-backend overhead *distribution* — median/p95/p99 plus a histogram
— instead of a per-cell grid.

``--scale`` multiplies the per-cell instruction budgets (default taken
from the ``REPRO_SCALE`` environment variable, default 1.0).

Figure grids run through the parallel experiment engine: ``--workers N``
fans cells out over N worker processes (0 = in-process serial, the
default), and results persist in the on-disk cache (``--cache-dir``,
the ``REPRO_CACHE_DIR`` environment variable, or ``.repro_cache/``, in
that order) so an interrupted or repeated run only recomputes
invalidated cells.  ``--expect-warm`` fails the invocation if any cell
had to be recomputed — CI uses it to guard the cache path.
``--warm-start`` resumes cells from a shared post-warm-up checkpoint
(one per benchmark/config) instead of re-simulating each cell's
warm-up prefix.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentSettings
from repro.harness.figures import (figure3, figure4, figure5, figure6,
                                   figure7, figure8, figure9, format_figure)
from repro.harness.report import headline_summary
from repro.harness.runner import Runner
from repro.harness.tables import (format_table1, format_table2, table1)

_FIGURES = {
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
}

_TARGETS = ("table1", "table2", *_FIGURES, "headline", "corpus", "all")


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and regenerate the requested exhibits."""
    parser = argparse.ArgumentParser(
        prog="dise-repro",
        description="Regenerate tables/figures of 'Low-Overhead "
                    "Interactive Debugging via Dynamic Instrumentation "
                    "with DISE' (HPCA-11, 2005)")
    parser.add_argument("target", choices=_TARGETS,
                        help="which exhibit to regenerate")
    parser.add_argument("--scale", type=float, default=None,
                        help="instruction-budget multiplier")
    parser.add_argument("--chart", action="store_true",
                        help="render figures as log-scale text bars")
    parser.add_argument("--summary", action="store_true",
                        help="append per-backend geomean summaries")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for figure grids "
                             "(0 = serial in-process)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset "
                             "(reduced grids)")
    parser.add_argument("--kinds", default=None,
                        help="comma-separated watchpoint-kind subset")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default .repro_cache or REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--progress", action="store_true",
                        help="stream a progress/telemetry line to stderr")
    parser.add_argument("--expect-warm", action="store_true",
                        help="fail if any figure cell had to be recomputed "
                             "(cache-regression guard)")
    parser.add_argument("--warm-start", action="store_true",
                        help="resume cells from a shared post-warm-up "
                             "checkpoint instead of re-simulating each "
                             "cell's warm-up prefix")
    parser.add_argument("--corpus", default="programs",
                        help="corpus for the 'corpus' target: programs, "
                             "benchmarks, generated, full, a workload "
                             "name, or a .s path (default: programs)")
    parser.add_argument("--corpus-size", type=int, default=32,
                        help="generated-corpus entry count "
                             "(corpus target, default 32)")
    parser.add_argument("--corpus-seed", type=int, default=0,
                        help="first seed of the generated corpus "
                             "(corpus target, default 0)")
    args = parser.parse_args(argv)
    settings = ExperimentSettings.scaled(args.scale,
                                         warm_start=args.warm_start)

    if args.cache_dir is not None:
        # Make the explicit directory the environment default too, so
        # worker processes and the warm-checkpoint store agree with the
        # result cache on where persistent state lives.
        os.environ["REPRO_CACHE_DIR"] = str(args.cache_dir)

    if args.no_cache:
        cache = ResultCache(enabled=False)
    elif args.cache_dir is not None:
        cache = ResultCache(args.cache_dir)
    else:
        cache = None  # environment-configured default

    started = time.time()
    targets = (["table1", *_FIGURES, "headline"] if args.target == "all"
               else [args.target])
    recomputed = 0
    for target in targets:
        runner = Runner(workers=args.workers, cache=cache,
                        progress=args.progress)
        _run_target(target, settings, runner, chart=args.chart,
                    summary=args.summary, benchmarks=args.benchmarks,
                    kinds=args.kinds, corpus=args.corpus,
                    corpus_size=args.corpus_size,
                    corpus_seed=args.corpus_seed)
        if runner.last_report is not None:
            print(f"[{target}] {runner.last_report.summary()}",
                  file=sys.stderr)
            recomputed += runner.last_report.computed
    print(f"\n[{time.time() - started:.1f}s]", file=sys.stderr)
    if args.expect_warm and recomputed:
        print(f"error: --expect-warm but {recomputed} cells were "
              f"recomputed (cache cold or invalidated)", file=sys.stderr)
        return 1
    return 0


def _run_target(target: str, settings: ExperimentSettings, runner: Runner,
                chart: bool = False, summary: bool = False,
                benchmarks: str | None = None,
                kinds: str | None = None,
                corpus: str = "programs",
                corpus_size: int = 32,
                corpus_seed: int = 0) -> None:
    if target == "corpus":
        from repro.api import experiment
        from repro.harness.report import render_distribution

        result = experiment(corpus=corpus, corpus_size=corpus_size,
                            corpus_seed=corpus_seed, settings=settings,
                            runner=runner)
        print(render_distribution(result))
        return
    if target in ("table1", "table2"):
        rows = table1(settings)
        print(format_table1(rows) if target == "table1"
              else format_table2(rows))
        return
    if target == "headline":
        print(headline_summary(figure3(settings, runner=runner)))
        return
    fig = _FIGURES[target]
    kwargs = {}
    parameters = inspect.signature(fig).parameters
    if benchmarks and "benchmarks" in parameters:
        kwargs["benchmarks"] = tuple(benchmarks.split(","))
    if kinds and "kinds" in parameters:
        kwargs["kinds"] = tuple(kinds.split(","))
    result = fig(settings, runner=runner, **kwargs)
    if chart:
        from repro.analysis import render_chart
        print(render_chart(result))
    else:
        print(format_figure(result))
    if summary:
        from repro.analysis import summarize_figure
        print()
        print(summarize_figure(result, baseline_backend="dise"
                               if any(c.backend == "dise"
                                      for c in result.cells) else None))


if __name__ == "__main__":
    raise SystemExit(main())
