"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.experiment` -- cell specs and the single-cell
  runner with warm-up handling and baseline caching.
* :mod:`repro.harness.cache` -- the persistent on-disk result cache
  (``.repro_cache/``), keyed by cell identity + code version.
* :mod:`repro.harness.runner` -- the parallel experiment engine
  (:class:`Runner`): cache-aware process-pool fan-out with retry and
  progress telemetry.
* :mod:`repro.harness.tables` -- Table 1 (benchmark summary) and
  Table 2 (watchpoint write frequencies).
* :mod:`repro.harness.figures` -- Figures 3-9.
* :mod:`repro.harness.report` -- text rendering of results.
* :mod:`repro.harness.cli` -- the ``dise-repro`` command-line tool.
"""

from repro.harness.cache import ResultCache, code_version, default_cache
from repro.harness.experiment import (ExperimentSettings, Cell, CellSpec,
                                      execute_spec, run_baseline, run_cell,
                                      run_spec, clear_baseline_cache)
from repro.harness.runner import Runner, RunReport
from repro.harness.tables import table1, table2
from repro.harness.figures import (FigureResult, figure3, figure4, figure5,
                                   figure6, figure7, figure8, figure9,
                                   run_figure)

__all__ = [
    "ExperimentSettings",
    "Cell",
    "CellSpec",
    "ResultCache",
    "Runner",
    "RunReport",
    "FigureResult",
    "code_version",
    "default_cache",
    "execute_spec",
    "run_baseline",
    "run_cell",
    "run_spec",
    "run_figure",
    "clear_baseline_cache",
    "table1",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
]
