"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.experiment` -- single-cell experiment runner with
  warm-up handling and baseline caching.
* :mod:`repro.harness.tables` -- Table 1 (benchmark summary) and
  Table 2 (watchpoint write frequencies).
* :mod:`repro.harness.figures` -- Figures 3-9.
* :mod:`repro.harness.report` -- text rendering of results.
* :mod:`repro.harness.cli` -- the ``dise-repro`` command-line tool.
"""

from repro.harness.experiment import (ExperimentSettings, Cell,
                                      run_baseline, run_cell,
                                      clear_baseline_cache)
from repro.harness.tables import table1, table2
from repro.harness.figures import (figure3, figure4, figure5, figure6,
                                   figure7, figure8, figure9)

__all__ = [
    "ExperimentSettings",
    "Cell",
    "run_baseline",
    "run_cell",
    "clear_baseline_cache",
    "table1",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
]
