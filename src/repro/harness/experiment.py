"""Single-cell experiment runner.

One *cell* is (benchmark, watchpoint kind, backend, conditional?,
options) -> normalized execution time, following the paper's
methodology:

* each run first executes a warm-up interval (caches, TLBs, predictor
  warm), then statistics reset and the measured interval runs;
* every implementation executes the same number of *application*
  instructions;
* overhead is the measured cycle count normalized to an undebugged
  baseline of the same benchmark (baselines are cached per settings).

A cell's identity is captured by the picklable, hashable
:class:`CellSpec`; :func:`run_spec` executes one spec (consulting the
on-disk :class:`~repro.harness.cache.ResultCache`), and the parallel
engine (:class:`repro.harness.runner.Runner`) fans many specs out over
worker processes.  Results are the unified, serializable
:class:`repro.results.RunResult`; ``Cell`` is a compatibility alias.

Unsupported combinations (e.g. hardware registers + INDIRECT) return a
cell marked unsupported, mirroring the missing bars of Figures 3 and 4.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Optional

from repro.config import DEFAULT_CONFIG, MachineConfig, default_scale
from repro.cpu.machine import Machine, MachineRun
from repro.debugger.backends import backend_class
from repro.debugger.session import Session
from repro.errors import UnsupportedWatchpointError
from repro.harness.cache import (ResultCache, WarmCheckpointCache,
                                 default_cache, default_warm_cache)
from repro.results import RunResult
from repro.workloads.benchmarks import (watch_expression,
                                        never_true_condition)


def _build_workload(name: str):
    """Resolve any workload name (benchmark, ``gen:<seed>``, ``.s``).

    Imported lazily: ``repro.workloads.corpus`` pulls in the fuzz
    package, whose campaign module imports the harness back.
    """
    from repro.workloads.corpus import build_workload

    return build_workload(name)

# Compatibility alias: the unified result type plays the former Cell's
# role (same leading field order, same attributes).
Cell = RunResult

_DEFAULT_MEASURE = 50_000
_DEFAULT_WARMUP = 50_000


@dataclass(frozen=True)
class ExperimentSettings:
    """Instruction budgets for one experiment family.

    ``warm_start`` makes cells resume from a shared post-warm-up
    checkpoint of the *undebugged* machine instead of simulating their
    own warm-up prefix (see :func:`warm_checkpoint`).  It is opt-in:
    with it, the warm-up interval runs without the debug mechanism
    installed, so mechanism-induced microarchitectural pollution of the
    warm-up (e.g. DISE expansions in the caches) is not reproduced —
    architectural state is identical either way.
    """

    measure_instructions: int = _DEFAULT_MEASURE
    warmup_instructions: int = _DEFAULT_WARMUP
    warm_start: bool = False

    @classmethod
    def scaled(cls, scale: Optional[float] = None, *,
               warm_start: bool = False) -> "ExperimentSettings":
        """Settings multiplied by ``scale`` (default: ``REPRO_SCALE``)."""
        factor = default_scale() if scale is None else scale
        return cls(
            measure_instructions=int(_DEFAULT_MEASURE * factor),
            warmup_instructions=int(_DEFAULT_WARMUP * factor),
            warm_start=warm_start,
        )


@dataclass(frozen=True)
class CellSpec:
    """The identity of one experiment cell (picklable and hashable).

    ``label`` optionally overrides the backend name recorded on the
    result (the figures use it to distinguish strategy variants of the
    same backend); ``options`` holds the backend keyword options as a
    sorted tuple of pairs so the spec stays hashable.

    ``benchmark`` is any workload name :func:`~repro.workloads.corpus.
    build_workload` accepts — a named benchmark, a promoted fuzz spec
    (``gen:<seed>``) or a corpus ``.s`` file.  ``workload_digest``
    carries the workload's content digest into the cache key, so
    editing one ``.s`` source invalidates exactly that entry's cells.
    ``settings_override`` pins instruction budgets *per cell* (corpus
    entries run whole programs, so warm-up/measure budgets are an
    entry property, not a sweep property); it folds into the cache key
    through :meth:`effective_settings`, which every execution and
    caching path applies.
    """

    benchmark: str
    kind: str
    backend: str
    conditional: bool = False
    watch_expressions: Optional[tuple[str, ...]] = None
    label: Optional[str] = None
    config: Optional[MachineConfig] = None
    options: tuple[tuple[str, Any], ...] = ()
    workload_digest: Optional[str] = None
    settings_override: Optional["ExperimentSettings"] = None

    @classmethod
    def make(cls, benchmark: str, kind: str, backend: str, *,
             conditional: bool = False,
             watch_expressions: Optional[list[str]] = None,
             label: Optional[str] = None,
             config: Optional[MachineConfig] = None,
             interpreter: Optional[str] = None,
             workload_digest: Optional[str] = None,
             settings_override: Optional["ExperimentSettings"] = None,
             **options) -> "CellSpec":
        """Build a spec from :func:`run_cell`-style arguments.

        ``interpreter`` is a sweepable cell axis ("table", "legacy",
        or "compiled"): it folds into ``config``, so two cells that
        differ only in interpreter tier get distinct cache keys via
        the config payload.
        """
        if interpreter is not None:
            config = (config or DEFAULT_CONFIG).with_(
                legacy_interpreter=interpreter == "legacy",
                interpreter=("compiled" if interpreter == "compiled"
                             else "table"))
        return cls(
            benchmark=benchmark,
            kind=kind,
            backend=backend,
            conditional=conditional,
            watch_expressions=(tuple(watch_expressions)
                               if watch_expressions is not None else None),
            label=label,
            config=config,
            options=tuple(sorted(options.items())),
            workload_digest=workload_digest,
            settings_override=settings_override,
        )

    def effective_settings(
            self, settings: Optional["ExperimentSettings"] = None,
    ) -> "ExperimentSettings":
        """The budgets this cell actually runs with.

        A spec-level ``settings_override`` wins over the sweep-level
        ``settings``; with neither, the scaled defaults apply.  Every
        path — cache key, in-process execution, worker execution —
        resolves budgets through here, which is why the parallel
        runner needs no per-spec settings plumbing.
        """
        if self.settings_override is not None:
            return self.settings_override
        return settings or ExperimentSettings.scaled()

    def cache_payload(self,
                      settings: Optional["ExperimentSettings"]) -> dict:
        """The JSON-able identity hashed into the cache key."""
        payload = {
            "benchmark": self.benchmark,
            "kind": self.kind,
            "backend": self.backend,
            "conditional": self.conditional,
            "watch_expressions": (list(self.watch_expressions)
                                  if self.watch_expressions is not None
                                  else None),
            "label": self.label,
            "config": asdict(self.config) if self.config else None,
            "options": [list(pair) for pair in self.options],
            "settings": asdict(self.effective_settings(settings)),
        }
        # Only corpus-addressed cells carry a digest; omitting the key
        # otherwise keeps every pre-existing cache entry addressable.
        if self.workload_digest is not None:
            payload["workload_digest"] = self.workload_digest
        return payload


_BASELINE_CACHE: dict[tuple, MachineRun] = {}
_WARM_CACHE: dict[tuple, object] = {}


def clear_baseline_cache() -> None:
    """Drop all cached baseline runs and warm-start checkpoints, in
    memory *and* on disk.

    The on-disk stores cleared are the environment-configured defaults
    (``REPRO_CACHE_DIR``); caches pointed at explicit directories are
    the caller's to manage.
    """
    _BASELINE_CACHE.clear()
    _WARM_CACHE.clear()
    default_cache().clear()
    default_warm_cache().clear()


def warm_payload(benchmark: str, settings: "ExperimentSettings",
                 config: Optional[MachineConfig],
                 detailed_timing: bool = True) -> dict:
    """The JSON-able prefix identity hashed into the warm-cache key.

    Deliberately excludes everything cell-specific (backend, kind,
    watchpoints, options, measure budget): cells that differ only in
    debug plan share one prefix.
    """
    return {
        "warm_checkpoint": True,
        "benchmark": benchmark,
        "config": asdict(config) if config else None,
        "warmup_instructions": settings.warmup_instructions,
        "detailed_timing": detailed_timing,
    }


def warm_checkpoint(benchmark: str,
                    settings: Optional["ExperimentSettings"] = None,
                    config: Optional[MachineConfig] = None, *,
                    detailed_timing: bool = True,
                    cache: Optional[WarmCheckpointCache] = None) -> object:
    """The post-warm-up checkpoint of an undebugged ``benchmark`` run.

    Computed at most once per (benchmark, config, warm-up budget,
    timing fidelity): cached in memory per process and pickled on disk
    so parallel workers and later invocations load instead of
    re-simulating the prefix.
    """
    settings = settings or ExperimentSettings.scaled()
    mem_key = (benchmark, settings.warmup_instructions, config,
               detailed_timing)
    blob = _WARM_CACHE.get(mem_key)
    if blob is not None:
        return blob
    cache = default_warm_cache() if cache is None else cache
    disk_key = (cache.key_for(warm_payload(benchmark, settings, config,
                                           detailed_timing))
                if cache.enabled else None)
    if disk_key is not None:
        blob = cache.load(disk_key)
        if blob is not None:
            _WARM_CACHE[mem_key] = blob
            return blob
    machine = Machine(_build_workload(benchmark), config,
                      detailed_timing=detailed_timing)
    machine.run(settings.warmup_instructions)
    blob = machine.snapshot()
    _WARM_CACHE[mem_key] = blob
    if disk_key is not None:
        cache.store(disk_key, blob)
    return blob


def _warm_checkpoint_for(spec: CellSpec,
                         settings: "ExperimentSettings") -> Optional[object]:
    """The warm-start blob for ``spec``, or None when it must run cold.

    Backends that statically transform the program (binary rewriting)
    cannot restore a checkpoint of the original binary; they fall back
    to simulating their own warm-up.
    """
    if not settings.warm_start or settings.warmup_instructions <= 0:
        return None
    try:
        if backend_class(spec.backend).transforms_program:
            return None
    except Exception:  # noqa: BLE001 - unknown backend errors later
        return None
    detailed = dict(spec.options).get("detailed_timing", True)
    return warm_checkpoint(spec.benchmark, settings, spec.config,
                           detailed_timing=detailed)


def run_baseline(benchmark: str,
                 settings: Optional[ExperimentSettings] = None,
                 config: Optional[MachineConfig] = None, *,
                 cache: Optional[ResultCache] = None) -> MachineRun:
    """Undebugged run of ``benchmark`` (cached in memory and on disk)."""
    settings = settings or ExperimentSettings.scaled()
    key = (benchmark, settings.measure_instructions,
           settings.warmup_instructions, config)
    cached = _BASELINE_CACHE.get(key)
    if cached is not None:
        return cached
    cache = default_cache() if cache is None else cache
    payload = {
        "baseline": True,
        "benchmark": benchmark,
        "config": asdict(config) if config else None,
        "settings": asdict(settings),
    }
    disk_key = cache.key_for(payload) if cache.enabled else None
    if disk_key is not None:
        stored = cache.load(disk_key)
        if stored is not None and stored.stats is not None:
            result = MachineRun(stats=stored.stats, halted=stored.halted)
            _BASELINE_CACHE[key] = result
            return result
    machine = Machine(_build_workload(benchmark), config)
    machine.run(settings.warmup_instructions)
    machine.reset_stats()
    result = machine.run(settings.measure_instructions)
    _BASELINE_CACHE[key] = result
    if disk_key is not None:
        cache.store(disk_key, RunResult(
            benchmark, "baseline", "undebugged", 1.0,
            stats=result.stats, halted=result.halted), payload)
    return result


def execute_spec(spec: CellSpec,
                 settings: Optional[ExperimentSettings] = None) -> RunResult:
    """Run one cell in-process, bypassing the on-disk cache."""
    settings = spec.effective_settings(settings)
    started = time.perf_counter()
    warm_blob = _warm_checkpoint_for(spec, settings)
    options = dict(spec.options)
    if warm_blob is not None:
        options["warm_checkpoint"] = warm_blob
    session = Session(_build_workload(spec.benchmark), backend=spec.backend,
                      config=spec.config, **options)
    try:
        if spec.watch_expressions is None:
            condition = (never_true_condition(spec.kind)
                         if spec.conditional else None)
            session.watch(watch_expression(spec.kind), condition=condition)
        else:
            for expression in spec.watch_expressions:
                condition = (f"{expression} == 0x0BADF00DDEADBEEF"
                             if spec.conditional else None)
                session.watch(expression, condition=condition)
        debugged = session.build_backend()
    except UnsupportedWatchpointError as exc:
        return RunResult(spec.benchmark, spec.kind,
                         spec.label or spec.backend, None, spec.conditional,
                         unsupported_reason=str(exc),
                         wall_time=time.perf_counter() - started)

    if not debugged.warm_started:
        debugged.machine.run(settings.warmup_instructions)
    debugged.machine.reset_stats()
    result = debugged.machine.run(settings.measure_instructions)
    baseline = run_baseline(spec.benchmark, settings)
    stats = result.stats
    return RunResult(
        spec.benchmark,
        spec.kind,
        spec.label or spec.backend,
        result.overhead_vs(baseline),
        spec.conditional,
        stats.user_transitions,
        stats.spurious_transitions,
        stats=stats,
        baseline_stats=baseline.stats,
        halted=result.halted,
        stopped_at_user=result.stopped_at_user,
        wall_time=time.perf_counter() - started,
        warm_started=debugged.warm_started,
    )


def run_spec(spec: CellSpec,
             settings: Optional[ExperimentSettings] = None, *,
             cache: Optional[ResultCache] = None) -> RunResult:
    """Run one cell, consulting (and filling) the on-disk cache."""
    settings = spec.effective_settings(settings)
    cache = default_cache() if cache is None else cache
    key = cache.key_for(spec.cache_payload(settings)) if cache.enabled \
        else None
    if key is not None:
        stored = cache.load(key)
        if stored is not None:
            return stored
    result = execute_spec(spec, settings)
    if key is not None:
        cache.store(key, result, spec.cache_payload(settings))
    return result


def run_cell(benchmark: str, kind: str, backend: str,
             conditional: bool = False,
             settings: Optional[ExperimentSettings] = None,
             config: Optional[MachineConfig] = None,
             watch_expressions: Optional[list[str]] = None, *,
             label: Optional[str] = None,
             cache: Optional[ResultCache] = None,
             interpreter: Optional[str] = None,
             **backend_options) -> RunResult:
    """Run one experiment cell and normalize against the baseline.

    ``watch_expressions`` overrides the single standard expression (used
    by the many-watchpoints experiment).  ``label``, when given, is
    recorded as the result's backend name; ``cache`` overrides the
    default on-disk result cache; ``interpreter`` selects the
    interpreter tier for the cell (see :meth:`CellSpec.make`).  All
    are keyword-only.
    """
    spec = CellSpec.make(benchmark, kind, backend, conditional=conditional,
                         watch_expressions=watch_expressions, label=label,
                         config=config, interpreter=interpreter,
                         **backend_options)
    return run_spec(spec, settings, cache=cache)
