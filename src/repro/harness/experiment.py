"""Single-cell experiment runner.

One *cell* is (benchmark, watchpoint kind, backend, conditional?,
options) -> normalized execution time, following the paper's
methodology:

* each run first executes a warm-up interval (caches, TLBs, predictor
  warm), then statistics reset and the measured interval runs;
* every implementation executes the same number of *application*
  instructions;
* overhead is the measured cycle count normalized to an undebugged
  baseline of the same benchmark (baselines are cached per settings).

Unsupported combinations (e.g. hardware registers + INDIRECT) return a
cell marked unsupported, mirroring the missing bars of Figures 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import MachineConfig, default_scale
from repro.cpu.machine import Machine, RunResult
from repro.debugger.session import DebugSession
from repro.errors import UnsupportedWatchpointError
from repro.workloads.benchmarks import (build_benchmark, watch_expression,
                                        never_true_condition)

_DEFAULT_MEASURE = 50_000
_DEFAULT_WARMUP = 50_000


@dataclass(frozen=True)
class ExperimentSettings:
    """Instruction budgets for one experiment family."""

    measure_instructions: int = _DEFAULT_MEASURE
    warmup_instructions: int = _DEFAULT_WARMUP

    @classmethod
    def scaled(cls, scale: Optional[float] = None) -> "ExperimentSettings":
        factor = default_scale() if scale is None else scale
        return cls(
            measure_instructions=int(_DEFAULT_MEASURE * factor),
            warmup_instructions=int(_DEFAULT_WARMUP * factor),
        )


@dataclass
class Cell:
    """One experiment cell's outcome."""

    benchmark: str
    kind: str
    backend: str
    overhead: Optional[float]  # None when unsupported
    conditional: bool = False
    user_transitions: int = 0
    spurious_transitions: int = 0
    unsupported_reason: str = ""
    stats: object = None

    @property
    def supported(self) -> bool:
        return self.overhead is not None


_BASELINE_CACHE: dict[tuple, RunResult] = {}


def clear_baseline_cache() -> None:
    """Drop all cached baseline runs (used between tests)."""
    _BASELINE_CACHE.clear()


def run_baseline(benchmark: str,
                 settings: Optional[ExperimentSettings] = None,
                 config: Optional[MachineConfig] = None) -> RunResult:
    """Undebugged run of ``benchmark`` (cached)."""
    settings = settings or ExperimentSettings.scaled()
    key = (benchmark, settings.measure_instructions,
           settings.warmup_instructions, config)
    cached = _BASELINE_CACHE.get(key)
    if cached is not None:
        return cached
    machine = Machine(build_benchmark(benchmark), config)
    machine.run(settings.warmup_instructions)
    machine.reset_stats()
    result = machine.run(settings.measure_instructions)
    _BASELINE_CACHE[key] = result
    return result


def run_cell(benchmark: str, kind: str, backend: str,
             conditional: bool = False,
             settings: Optional[ExperimentSettings] = None,
             config: Optional[MachineConfig] = None,
             watch_expressions: Optional[list[str]] = None,
             **backend_options) -> Cell:
    """Run one experiment cell and normalize against the baseline.

    ``watch_expressions`` overrides the single standard expression (used
    by the many-watchpoints experiment).
    """
    settings = settings or ExperimentSettings.scaled()
    session = DebugSession(build_benchmark(benchmark), backend=backend,
                           config=config, **backend_options)
    try:
        if watch_expressions is None:
            condition = never_true_condition(kind) if conditional else None
            session.watch(watch_expression(kind), condition=condition)
        else:
            for expression in watch_expressions:
                condition = (f"{expression} == 0x0BADF00DDEADBEEF"
                             if conditional else None)
                session.watch(expression, condition=condition)
        debugged = session.build_backend()
    except UnsupportedWatchpointError as exc:
        return Cell(benchmark, kind, backend, None, conditional,
                    unsupported_reason=str(exc))

    debugged.machine.run(settings.warmup_instructions)
    debugged.machine.reset_stats()
    result = debugged.machine.run(settings.measure_instructions)
    baseline = run_baseline(benchmark, settings)
    stats = result.stats
    return Cell(
        benchmark=benchmark,
        kind=kind,
        backend=backend,
        overhead=result.overhead_vs(baseline),
        conditional=conditional,
        user_transitions=stats.user_transitions,
        spurious_transitions=stats.spurious_transitions,
        stats=stats,
    )
