"""Parallel experiment engine.

:class:`Runner` takes a list of :class:`~repro.harness.experiment.CellSpec`
cells, answers what it can from the on-disk result cache, and fans the
misses out over a ``ProcessPoolExecutor`` (worker count configurable,
default ``os.cpu_count() - 1``).  Results stream back as they finish:
each completion updates a progress/telemetry line (cells done/failed,
cache hits, aggregate simulated instructions per second, ETA) and is
written straight back to the cache, so an interrupted grid loses only
its in-flight cells.

Worker crashes are survived: a cell whose worker dies (or whose pool
breaks) is resubmitted to a fresh pool up to ``retries`` extra times
before being recorded as a failed cell — the grid always completes.

``workers=0`` (or 1) runs everything in-process, byte-for-byte
identical to the historical serial path; the parallel path produces the
same :class:`~repro.cpu.stats.SimStats` per cell because the simulator
is deterministic.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.config import default_workers
from repro.harness.cache import ResultCache, default_cache
from repro.harness.experiment import (CellSpec, ExperimentSettings,
                                      execute_spec)
from repro.results import RunResult


def _execute_remote(spec: CellSpec,
                    settings: ExperimentSettings) -> RunResult:
    """Worker-process entry point (workers never touch the cache)."""
    return execute_spec(spec, settings)


@dataclass
class RunReport:
    """Telemetry of one :meth:`Runner.run` invocation."""

    total: int = 0
    computed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    wall_time: float = 0.0
    instructions: int = 0  # simulated instructions in *computed* cells
    warmed: int = 0  # computed cells that resumed from a warm checkpoint
    prefixes: int = 0  # distinct warm prefixes ensured before fan-out

    @property
    def done(self) -> int:
        """Cells accounted for so far (computed + cached + failed)."""
        return self.computed + self.cached + self.failed

    @property
    def instructions_per_second(self) -> float:
        """Aggregate simulated-instruction throughput of computed cells."""
        if self.wall_time <= 0:
            return 0.0
        return self.instructions / self.wall_time

    def summary(self) -> str:
        """One-line rendering for logs and the CLI."""
        warm = (f", {self.warmed} warm-started "
                f"({self.prefixes} shared prefixes)" if self.warmed else "")
        return (f"{self.total} cells: {self.computed} computed, "
                f"{self.cached} cached, {self.failed} failed{warm} in "
                f"{self.wall_time:.1f}s "
                f"({self.instructions_per_second / 1e6:.2f}M sim-instr/s)")


class Runner:
    """Expands experiment specs into cells and runs them in parallel."""

    def __init__(self, *, workers: Optional[int] = None,
                 settings: Optional[ExperimentSettings] = None,
                 cache: Optional[ResultCache] = None,
                 retries: int = 2,
                 progress: bool = False,
                 stream=None,
                 worker: Optional[Callable[..., RunResult]] = None):
        self.workers = default_workers() if workers is None else max(0, workers)
        self.settings = settings
        self.cache = default_cache() if cache is None else cache
        self.retries = max(0, retries)
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.worker = worker or _execute_remote
        self.last_report: Optional[RunReport] = None

    def run(self, specs: Iterable[CellSpec], *,
            settings: Optional[ExperimentSettings] = None
            ) -> list[RunResult]:
        """Run every spec; results come back in spec order."""
        specs = list(specs)
        settings = settings or self.settings or ExperimentSettings.scaled()
        report = RunReport(total=len(specs))
        started = time.perf_counter()
        results: list[Optional[RunResult]] = [None] * len(specs)

        # Answer what we can from the cache up front.
        misses: list[tuple[int, CellSpec, Optional[str]]] = []
        for index, spec in enumerate(specs):
            key = (self.cache.key_for(spec.cache_payload(settings))
                   if self.cache.enabled else None)
            stored = self.cache.load(key) if key is not None else None
            if stored is not None:
                results[index] = stored
                report.cached += 1
                self._emit_progress(report, started)
            else:
                misses.append((index, spec, key))

        if misses and settings.warm_start:
            report.prefixes = self._ensure_warm_prefixes(
                [spec for _, spec, _ in misses], settings)

        if misses:
            if self.workers <= 1:
                self._run_serial(misses, settings, results, report, started)
            else:
                self._run_parallel(misses, settings, results, report, started)

        report.wall_time = time.perf_counter() - started
        self._emit_progress(report, started, final=True)
        self.last_report = report
        return results

    # -- warm-start prefixes -----------------------------------------------

    def _ensure_warm_prefixes(self, specs: list[CellSpec],
                              settings: ExperimentSettings) -> int:
        """Compute (and persist) every distinct shared warm-up prefix.

        Runs before fan-out so worker processes find the checkpoints in
        the on-disk store instead of each re-simulating the warm-up.
        Returns the number of distinct prefixes ensured.
        """
        from repro.debugger.backends import backend_class
        from repro.harness.experiment import warm_checkpoint

        if settings.warmup_instructions <= 0:
            return 0
        prefixes = set()
        for spec in specs:
            try:
                if backend_class(spec.backend).transforms_program:
                    continue  # runs cold; no shared prefix
            except Exception:  # noqa: BLE001 - unknown backend fails later
                continue
            detailed = dict(spec.options).get("detailed_timing", True)
            prefixes.add((spec.benchmark, spec.config, detailed))
        for benchmark, config, detailed in sorted(
                prefixes, key=lambda p: (p[0], repr(p[1]), p[2])):
            warm_checkpoint(benchmark, settings, config,
                            detailed_timing=detailed)
        return len(prefixes)

    # -- execution paths ---------------------------------------------------

    def _run_serial(self, todo, settings, results, report, started) -> None:
        """In-process execution (workers <= 1)."""
        for index, spec, key in todo:
            try:
                result = self.worker(spec, settings)
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                self._record_failure(results, report, index, spec, exc)
                continue
            self._record_success(results, report, settings, index, spec,
                                 key, result)
            self._emit_progress(report, started)

    def _run_parallel(self, todo, settings, results, report, started) -> None:
        """Fan misses out over worker processes, retrying crashes."""
        attempts: dict[int, int] = {}
        failures: dict[int, BaseException] = {}
        while todo:
            next_round: list = []
            max_workers = min(self.workers, len(todo))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(self.worker, spec, settings): (index, spec,
                                                               key)
                    for index, spec, key in todo
                }
                todo = []
                pending = set(futures)
                broken = False
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        index, spec, key = futures[future]
                        exc = future.exception()
                        if exc is None:
                            self._record_success(results, report, settings,
                                                 index, spec, key,
                                                 future.result())
                            self._emit_progress(report, started)
                            continue
                        failures[index] = exc
                        self._retry_or_fail(next_round, results, report,
                                            attempts, index, spec, key, exc,
                                            started)
                        if isinstance(exc, BrokenProcessPool):
                            broken = True
                    if broken:
                        # The pool is unusable: pull every in-flight cell
                        # back and resubmit to a fresh pool.
                        for future in pending:
                            future.cancel()
                            index, spec, key = futures[future]
                            exc = failures.get(index,
                                               BrokenProcessPool(
                                                   "worker pool crashed"))
                            self._retry_or_fail(next_round, results, report,
                                                attempts, index, spec, key,
                                                exc, started)
                        pending = set()
            todo = next_round

    # -- bookkeeping -------------------------------------------------------

    def _record_success(self, results, report, settings, index, spec, key,
                        result: RunResult) -> None:
        results[index] = result
        report.computed += 1
        if result.warm_started:
            report.warmed += 1
        if result.stats is not None:
            report.instructions += result.stats.total_instructions
        if key is not None:
            self.cache.store(key, result, spec.cache_payload(settings))

    def _record_failure(self, results, report, index, spec: CellSpec,
                        exc: BaseException) -> None:
        results[index] = RunResult(
            spec.benchmark, spec.kind, spec.label or spec.backend, None,
            spec.conditional,
            unsupported_reason=f"worker failed: {exc!r}")
        report.failed += 1

    def _retry_or_fail(self, next_round, results, report, attempts, index,
                       spec, key, exc, started) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] <= self.retries:
            report.retried += 1
            next_round.append((index, spec, key))
        else:
            self._record_failure(results, report, index, spec, exc)
            self._emit_progress(report, started)

    def _emit_progress(self, report: RunReport, started: float,
                       final: bool = False) -> None:
        if not self.progress:
            return
        elapsed = max(time.perf_counter() - started, 1e-9)
        rate = report.done / elapsed
        remaining = report.total - report.done
        eta = remaining / rate if rate > 0 else float("inf")
        line = (f"\r[runner] {report.done}/{report.total} cells "
                f"({report.cached} cached, {report.failed} failed)  "
                f"{report.instructions / elapsed / 1e6:.2f}M sim-instr/s  "
                f"ETA {eta:5.0f}s")
        self.stream.write(line)
        if final:
            self.stream.write("\n")
        self.stream.flush()
