"""Tables 1 and 2: benchmark summary and watchpoint write frequencies.

Both tables are *measured* from the synthetic workloads (baseline runs
with a store observer) and reported side by side with the paper's
values, so the reproduction quality is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.machine import Machine
from repro.harness.experiment import ExperimentSettings
from repro.workloads.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.workloads.profiles import profile_for

# Paper Table 2 (writes per 100K stores).  "~0" entries are recorded as
# 0.01 for comparison purposes.
PAPER_TABLE2 = {
    "bzip2": {"HOT": 24805.7, "WARM1": 193.4, "WARM2": 0.01, "COLD": 0.0,
              "INDIRECT": 24805.7, "RANGE": 193.4},
    "crafty": {"HOT": 6531.4, "WARM1": 3308.4, "WARM2": 6.7, "COLD": 0.4,
               "INDIRECT": 6531.4, "RANGE": 72.8},
    "gcc": {"HOT": 454.8, "WARM1": 223.7, "WARM2": 0.2, "COLD": 0.1,
            "INDIRECT": 454.8, "RANGE": 8197.9},
    "mcf": {"HOT": 11229.8, "WARM1": 1168.4, "WARM2": 215.4, "COLD": 0.0,
            "INDIRECT": 11229.8, "RANGE": 0.0},
    "twolf": {"HOT": 1467.4, "WARM1": 227.5, "WARM2": 101.4, "COLD": 80.8,
              "INDIRECT": 1467.4, "RANGE": 250.6},
    "vortex": {"HOT": 7290.3, "WARM1": 27.6, "WARM2": 27.6, "COLD": 0.01,
               "INDIRECT": 7290.3, "RANGE": 0.4},
}


@dataclass
class BenchmarkCharacterization:
    """Measured baseline behaviour of one benchmark."""

    name: str
    function: str
    instructions: int
    ipc: float
    store_density: float
    paper_instructions: int
    paper_ipc: float
    paper_store_density: float
    # Watch-target write frequencies per 100K stores.
    write_freq: dict[str, float] = None
    silent_fraction: dict[str, float] = None


def characterize(benchmark: str,
                 settings: Optional[ExperimentSettings] = None
                 ) -> BenchmarkCharacterization:
    """Measure Table 1/2 statistics for one benchmark."""
    settings = settings or ExperimentSettings.scaled()
    profile = profile_for(benchmark)
    program = build_benchmark(benchmark)
    machine = Machine(program)

    targets = {
        "HOT": _extent(program, "hot"),
        "WARM1": _extent(program, "warm1"),
        "WARM2": _extent(program, "warm2"),
        "COLD": _extent(program, "cold"),
        "RANGE": _extent(program, "range_arr"),
    }
    writes = {name: 0 for name in targets}
    silent = {name: 0 for name in targets}

    def observe(addr: int, size: int, new: int, old: int) -> None:
        end = addr + size
        for name, (lo, hi) in targets.items():
            if addr < hi and end > lo:
                writes[name] += 1
                if new == old:
                    silent[name] += 1

    machine.run(settings.warmup_instructions)
    machine.reset_stats()
    machine.store_observer = observe
    result = machine.run(settings.measure_instructions)
    stats = result.stats

    per_100k = {
        name: (count / stats.stores * 100_000.0 if stats.stores else 0.0)
        for name, count in writes.items()
    }
    # INDIRECT shares storage with HOT (written through the pointer).
    per_100k["INDIRECT"] = per_100k["HOT"]
    silent_frac = {
        name: (silent[name] / writes[name] if writes[name] else 0.0)
        for name in writes
    }
    return BenchmarkCharacterization(
        name=benchmark,
        function=profile.function,
        instructions=stats.app_instructions,
        ipc=stats.ipc,
        store_density=stats.store_density,
        paper_instructions=profile.paper_instructions,
        paper_ipc=profile.paper_ipc,
        paper_store_density=profile.paper_store_density,
        write_freq=per_100k,
        silent_fraction=silent_frac,
    )


def _extent(program, symbol: str) -> tuple[int, int]:
    info = program.symbol(symbol)
    size = info.size or 8
    return info.address, info.address + size


def table1(settings: Optional[ExperimentSettings] = None,
           benchmarks: tuple[str, ...] = BENCHMARK_NAMES
           ) -> list[BenchmarkCharacterization]:
    """Table 1: benchmark summary (function, instructions, IPC, store
    density), measured vs paper."""
    return [characterize(name, settings) for name in benchmarks]


def table2(settings: Optional[ExperimentSettings] = None,
           benchmarks: tuple[str, ...] = BENCHMARK_NAMES
           ) -> list[BenchmarkCharacterization]:
    """Table 2: watchpoint write frequency per 100K stores."""
    return [characterize(name, settings) for name in benchmarks]


def format_table1(rows: list[BenchmarkCharacterization]) -> str:
    """Render Table 1 rows as aligned text (measured | paper)."""
    lines = [
        "Table 1. Benchmark summary (measured | paper)",
        f"{'bench':8s} {'function':24s} {'IPC':>13s} {'store density':>19s}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:8s} {row.function:24s} "
            f"{row.ipc:5.2f} | {row.paper_ipc:4.2f} "
            f"{row.store_density:8.1%} | {row.paper_store_density:6.1%}")
    return "\n".join(lines)


def format_table2(rows: list[BenchmarkCharacterization]) -> str:
    """Render Table 2 rows as aligned text (measured | paper)."""
    kinds = ("HOT", "WARM1", "WARM2", "COLD", "INDIRECT", "RANGE")
    lines = [
        "Table 2. Watchpoint write frequency per 100K stores "
        "(measured | paper)",
        f"{'bench':8s}" + "".join(f"{k:>21s}" for k in kinds),
    ]
    for row in rows:
        cells = []
        for kind in kinds:
            measured = row.write_freq[kind]
            paper = PAPER_TABLE2[row.name][kind]
            cells.append(f"{measured:9.1f}|{paper:9.1f}")
        lines.append(f"{row.name:8s}" + " ".join(cells))
    return "\n".join(lines)
