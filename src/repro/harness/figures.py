"""Reproductions of the paper's Figures 3-9.

Each ``figureN`` function expands the corresponding experiment grid
into :class:`~repro.harness.experiment.CellSpec` cells (see the
``figureN_specs`` builders), runs them through the parallel engine
(:class:`~repro.harness.runner.Runner` — pass ``runner=`` to control
worker count, caching, and progress reporting; the default runs
serially in-process), and returns a :class:`FigureResult`;
``format_figure(result)`` renders it as text.  Overheads are execution
time normalized to the undebugged baseline, exactly as the paper plots
them (log scale in Figures 3/4/6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import DEFAULT_CONFIG
from repro.harness.experiment import Cell, CellSpec, ExperimentSettings
from repro.harness.runner import Runner, RunReport
from repro.workloads.benchmarks import BENCHMARK_NAMES

SCALAR_KINDS = ("HOT", "WARM1", "WARM2", "COLD")
ALL_KINDS = SCALAR_KINDS + ("INDIRECT", "RANGE")
COMPARED_BACKENDS = ("single_step", "virtual_memory", "hardware", "dise")

# Paper Figure 6 configuration.
FIG6_BENCHMARKS = ("crafty", "gcc", "vortex")
FIG6_COUNTS = (1, 2, 3, 4, 5, 8, 16)
# The many-watchpoint sets draw from the multi bank: plain scalars
# whose writes always change values, so the hardware registers look as
# good as they ever can below their capacity (matching the paper's
# near-free hardware bars at 1-4 watchpoints) and the VM fallback's
# page sharing dominates beyond it.
FIG6_WATCH_ORDER = [f"multi{i}" for i in range(16)]

# Paper Figure 7 configuration.
FIG7_BENCHMARKS = ("bzip2", "mcf", "twolf")
FIG7_VARIANTS = (
    # (label, check, conditional_isa)
    ("MA/EE +ccall", "match-address", True),
    ("EE/-- +ctrap", "evaluate-expression", True),
    ("MAV/-- +ctrap", "match-address-value", True),
    ("MA/EE -ccall", "match-address", False),
    ("EE/-- -ctrap", "evaluate-expression", False),
    ("MAV/-- -ctrap", "match-address-value", False),
)


@dataclass
class FigureResult:
    """The outcome of one figure's experiment grid."""

    name: str
    description: str
    cells: list[Cell]
    row_keys: tuple[str, ...] = ()  # how to group rows when formatting
    column_label: str = "backend"
    report: Optional[RunReport] = None  # telemetry of the producing run

    def cell(self, **criteria) -> Optional[Cell]:
        """First cell whose attributes match all ``criteria``."""
        for cell in self.cells:
            if all(getattr(cell, key) == value
                   for key, value in criteria.items()):
                return cell
        return None

    def overhead(self, **criteria) -> Optional[float]:
        """Shorthand: the matching cell's overhead (None if absent)."""
        cell = self.cell(**criteria)
        return cell.overhead if cell else None


def run_figure(name: str, description: str, specs: Sequence[CellSpec],
               settings: Optional[ExperimentSettings] = None, *,
               runner: Optional[Runner] = None) -> FigureResult:
    """Run a grid of cell specs through the (given or serial) engine."""
    runner = runner or Runner(workers=0)
    cells = runner.run(specs, settings=settings)
    return FigureResult(name, description, cells,
                        report=runner.last_report)


def figure3_specs(benchmarks: Sequence[str] = BENCHMARK_NAMES,
                  kinds: Sequence[str] = ALL_KINDS) -> list[CellSpec]:
    """The Figure 3 grid: benchmarks x kinds x compared backends."""
    return [
        CellSpec.make(bench, kind, backend)
        for bench in benchmarks
        for kind in kinds
        for backend in COMPARED_BACKENDS
    ]


def figure3(settings: Optional[ExperimentSettings] = None,
            benchmarks: Sequence[str] = BENCHMARK_NAMES,
            kinds: Sequence[str] = ALL_KINDS, *,
            runner: Optional[Runner] = None) -> FigureResult:
    """Figure 3: four implementations of single unconditional
    watchpoints across benchmarks and watchpoint kinds."""
    return run_figure(
        "figure3",
        "Comparison of four unconditional watchpoint implementations "
        "(execution time normalized to baseline; log scale)",
        figure3_specs(benchmarks, kinds), settings, runner=runner)


def figure4_specs(benchmarks: Sequence[str] = BENCHMARK_NAMES,
                  kinds: Sequence[str] = ALL_KINDS) -> list[CellSpec]:
    """The Figure 4 grid: Figure 3 with never-true conditions."""
    return [
        CellSpec.make(bench, kind, backend, conditional=True)
        for bench in benchmarks
        for kind in kinds
        for backend in COMPARED_BACKENDS
    ]


def figure4(settings: Optional[ExperimentSettings] = None,
            benchmarks: Sequence[str] = BENCHMARK_NAMES,
            kinds: Sequence[str] = ALL_KINDS, *,
            runner: Optional[Runner] = None) -> FigureResult:
    """Figure 4: the same grid with a never-true condition attached."""
    return run_figure(
        "figure4",
        "Comparison of four conditional watchpoint implementations "
        "(predicate never true)",
        figure4_specs(benchmarks, kinds), settings, runner=runner)


def figure5_specs(benchmarks: Sequence[str] = BENCHMARK_NAMES
                  ) -> list[CellSpec]:
    """The Figure 5 grid: DISE vs binary rewriting on COLD."""
    specs = []
    for bench in benchmarks:
        specs.append(CellSpec.make(bench, "COLD", "dise"))
        specs.append(CellSpec.make(bench, "COLD", "binary_rewrite"))
    return specs


def figure5(settings: Optional[ExperimentSettings] = None,
            benchmarks: Sequence[str] = BENCHMARK_NAMES, *,
            runner: Optional[Runner] = None) -> FigureResult:
    """Figure 5: DISE vs static binary rewriting on COLD watchpoints.

    Binary rewriting's inlined checks inflate the static image and
    degrade I-cache behaviour for large-footprint benchmarks.
    """
    return run_figure(
        "figure5",
        "DISE vs binary rewriting, COLD watchpoint (I-cache effects)",
        figure5_specs(benchmarks), settings, runner=runner)


def figure6_specs(benchmarks: Sequence[str] = FIG6_BENCHMARKS,
                  counts: Sequence[int] = FIG6_COUNTS) -> list[CellSpec]:
    """The Figure 6 grid: 1-16 watchpoints, four mechanisms."""
    specs = []
    for bench in benchmarks:
        for count in counts:
            expressions = FIG6_WATCH_ORDER[:count]
            specs.append(CellSpec.make(
                bench, f"N={count}", "hardware",
                watch_expressions=expressions))
            for label, strategy in (("dise-serial", "serial"),
                                    ("dise-bloom-byte", "bloom-byte"),
                                    ("dise-bloom-bit", "bloom-bit")):
                specs.append(CellSpec.make(
                    bench, f"N={count}", "dise",
                    watch_expressions=expressions, label=label,
                    multi_strategy=strategy))
    return specs


def figure6(settings: Optional[ExperimentSettings] = None,
            benchmarks: Sequence[str] = FIG6_BENCHMARKS,
            counts: Sequence[int] = FIG6_COUNTS, *,
            runner: Optional[Runner] = None) -> FigureResult:
    """Figure 6: 1-16 watchpoints.

    Hardware registers (VM fallback beyond four) vs three DISE
    replacement-sequence strategies: serial address match, bytewise
    Bloom, bitwise Bloom.
    """
    return run_figure(
        "figure6",
        "Impact of the number of watchpoints (hardware+VM fallback vs "
        "DISE serial / bytewise-Bloom / bitwise-Bloom)",
        figure6_specs(benchmarks, counts), settings, runner=runner)


def figure7_specs(benchmarks: Sequence[str] = FIG7_BENCHMARKS,
                  kinds: Sequence[str] = SCALAR_KINDS) -> list[CellSpec]:
    """The Figure 7 grid: six DISE replacement organizations."""
    return [
        CellSpec.make(bench, kind, "dise", label=label, check=check,
                      conditional_isa=cond_isa)
        for bench in benchmarks
        for kind in kinds
        for label, check, cond_isa in FIG7_VARIANTS
    ]


def figure7(settings: Optional[ExperimentSettings] = None,
            benchmarks: Sequence[str] = FIG7_BENCHMARKS,
            kinds: Sequence[str] = SCALAR_KINDS, *,
            runner: Optional[Runner] = None) -> FigureResult:
    """Figure 7: six DISE replacement-sequence organizations.

    {Match-Address/Evaluate-Expression, Evaluate-Expression/--,
    Match-Address-Value/--} x {with, without} the conditional
    call/trap DISE-ISA extension.
    """
    return run_figure(
        "figure7",
        "Alternate DISE implementations (top: with conditional "
        "call/trap; bottom: without)",
        figure7_specs(benchmarks, kinds), settings, runner=runner)


def figure8_specs(benchmarks: Sequence[str] = BENCHMARK_NAMES,
                  kinds: Sequence[str] = SCALAR_KINDS) -> list[CellSpec]:
    """The Figure 8 grid: DISE with and without multithreaded calls."""
    mt_config = DEFAULT_CONFIG.with_(multithreaded_dise_calls=True)
    specs = []
    for bench in benchmarks:
        for kind in kinds:
            specs.append(CellSpec.make(bench, kind, "dise"))
            specs.append(CellSpec.make(bench, kind, "dise", label="dise-mt",
                                       config=mt_config))
    return specs


def figure8(settings: Optional[ExperimentSettings] = None,
            benchmarks: Sequence[str] = BENCHMARK_NAMES,
            kinds: Sequence[str] = SCALAR_KINDS, *,
            runner: Optional[Runner] = None) -> FigureResult:
    """Figure 8: multithreaded execution of DISE-called functions."""
    return run_figure(
        "figure8",
        "DISE overhead with and without multithreaded function calls",
        figure8_specs(benchmarks, kinds), settings, runner=runner)


def figure9_specs(benchmarks: Sequence[str] = BENCHMARK_NAMES
                  ) -> list[CellSpec]:
    """The Figure 9 grid: plain vs protected DISE, COLD watchpoint."""
    specs = []
    for bench in benchmarks:
        specs.append(CellSpec.make(bench, "COLD", "dise"))
        specs.append(CellSpec.make(bench, "COLD", "dise",
                                   label="dise-protected", protect=True))
    return specs


def figure9(settings: Optional[ExperimentSettings] = None,
            benchmarks: Sequence[str] = BENCHMARK_NAMES, *,
            runner: Optional[Runner] = None) -> FigureResult:
    """Figure 9: cost of protecting the debugger's embedded structures
    (COLD watchpoint; the Figure 2f store-checking production)."""
    return run_figure(
        "figure9",
        "Cost of protecting debugger structures (COLD watchpoint)",
        figure9_specs(benchmarks), settings, runner=runner)


def format_figure(result: FigureResult) -> str:
    """Render a figure's cells as an aligned text table."""
    backends = []
    for cell in result.cells:
        if cell.backend not in backends:
            backends.append(cell.backend)
    rows: dict[tuple[str, str], dict[str, Cell]] = {}
    for cell in result.cells:
        rows.setdefault((cell.benchmark, cell.kind), {})[cell.backend] = cell
    width = max(len(b) for b in backends) + 2
    lines = [result.name + ": " + result.description,
             f"{'bench':8s} {'watch':10s}"
             + "".join(f"{b:>{width}s}" for b in backends)]
    for (bench, kind), by_backend in rows.items():
        cells = []
        for backend in backends:
            cell = by_backend.get(backend)
            if cell is None or cell.overhead is None:
                cells.append(f"{'--':>{width}s}")
            else:
                cells.append(f"{_fmt(cell.overhead):>{width}s}")
        lines.append(f"{bench:8s} {kind:10s}" + "".join(cells))
    return "\n".join(lines)


def _fmt(overhead: float) -> str:
    if overhead >= 1000:
        return f"{overhead:,.0f}"
    if overhead >= 10:
        return f"{overhead:.1f}"
    return f"{overhead:.2f}"
