"""Machine and experiment configuration.

The defaults mirror the simulated machine of the paper's Section 5:

    "We model a dynamically-scheduled 4-way superscalar processor with a
    12-stage pipeline, 128-entry re-order buffer, and 80 reservation
    stations.  The simulated processor has an 8K entry hybrid branch
    predictor, 2K-entry BTB [...].  The on-chip memory system is composed
    of 32KB 2-way set-associative instruction and data caches, 64-entry
    4-way set-associative instruction and data TLBs, and a 1MB, 4-way set
    associative L2.  Main memory has 100 cycle access latency [...].  The
    DISE engine is modestly configured (32-entry pattern table and a
    512-instruction 2-way set-associative replacement table)."

and the experimental methodology:

    "We model the cost of spurious debugger transitions by flushing the
    pipeline and stalling for 100,000 cycles."
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.associativity} ways x {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of a translation lookaside buffer."""

    entries: int = 64
    associativity: int = 4
    page_bytes: int = 4096
    miss_penalty: int = 30

    @property
    def num_sets(self) -> int:
        return self.entries // self.associativity


@dataclass(frozen=True)
class DiseConfig:
    """Capacity of the DISE engine tables (paper Section 5)."""

    pattern_table_entries: int = 32
    replacement_table_instructions: int = 512
    replacement_table_ways: int = 2
    num_dise_registers: int = 16


@dataclass(frozen=True)
class PipelineConfig:
    """Width, depth and penalties of the timing model."""

    commit_width: int = 4
    load_ports: int = 2
    store_ports: int = 1
    pipeline_depth: int = 12
    rob_entries: int = 128
    # Flush penalty: a pipeline flush costs a refill of the front end.
    flush_penalty: int = 12
    # Fraction of a long-latency miss that out-of-order execution hides.
    # These are first-order stand-ins for a full OoO model; see DESIGN.md.
    l2_hit_overlap: float = 0.7
    memory_overlap: float = 0.4
    dependent_load_overlap: float = 0.0


@dataclass(frozen=True)
class MemoryTimingConfig:
    """Latency of each level of the memory hierarchy (cycles)."""

    l1_hit: int = 3
    l2_hit: int = 15
    memory: int = 100


@dataclass(frozen=True)
class DebugCostConfig:
    """Costs of debugger interactions (paper Section 5 methodology)."""

    # Cost of a spurious debugger transition: flush + 100,000-cycle stall.
    spurious_transition_cycles: int = 100_000
    # User transitions (and their accompanying debugger transitions) are
    # modeled as free so that results are comparable across runs.
    user_transition_cycles: int = 0


@dataclass(frozen=True)
class MachineConfig:
    """Complete configuration of the simulated machine."""

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=2)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=1024 * 1024, associativity=4)
    )
    itlb: TlbConfig = field(default_factory=TlbConfig)
    dtlb: TlbConfig = field(default_factory=TlbConfig)
    mem_timing: MemoryTimingConfig = field(default_factory=MemoryTimingConfig)
    dise: DiseConfig = field(default_factory=DiseConfig)
    debug_costs: DebugCostConfig = field(default_factory=DebugCostConfig)
    page_bytes: int = 4096
    branch_predictor_entries: int = 8192
    btb_entries: int = 2048
    # The paper: "The simulator extracts all nops from the dynamic
    # instruction stream at no simulated cost."
    free_nops: bool = True
    # Multithreaded execution of DISE-called functions (paper Section 4,
    # "Multithreading DISE function calls"; evaluated in Figure 8).
    multithreaded_dise_calls: bool = False
    # Run the pre-dispatch-table interpreter (kept for differential
    # validation of the table-driven rewrite; scheduled for removal).
    legacy_interpreter: bool = False
    # Interpreter tier: "table" (dispatch-table, the default), "legacy"
    # (equivalent to legacy_interpreter=True), or "compiled" (basic
    # blocks fused into generated Python closures; see
    # repro.cpu.compiled).  legacy_interpreter=True wins over this
    # field so existing call sites keep their meaning.
    interpreter: str = "table"
    # Chain-loop visits before the compiled tier compiles a block at an
    # entry pc (see repro.cpu.compiled).  The default keeps large
    # workloads from compiling redundant chunk-boundary blocks after
    # run-limit resumes; differential harnesses drop it to 1 so tiny
    # programs compile eagerly and cache-invalidation bugs surface.
    compiled_hot_threshold: int = 4
    # Auto-checkpoint every N application instructions during Machine.run
    # (0 disables).  Checkpoints land in the machine's CheckpointStore
    # and power reverse-continue/reverse-step (see repro.replay).
    checkpoint_interval: int = 0

    def with_(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def effective_interpreter(self) -> str:
        """The interpreter tier that will actually run."""
        return "legacy" if self.legacy_interpreter else self.interpreter


def default_workers() -> int:
    """Worker-process count for the parallel experiment engine.

    Settable via the ``REPRO_WORKERS`` environment variable; defaults
    to ``os.cpu_count() - 1`` (but at least 1) so one core stays free
    for the coordinating process.
    """
    try:
        value = int(os.environ.get("REPRO_WORKERS", "0"))
    except ValueError:
        value = 0
    if value > 0:
        return value
    return max(1, (os.cpu_count() or 2) - 1)


def default_cache_dir() -> str:
    """Directory of the on-disk result cache (``REPRO_CACHE_DIR`` env).

    Defaults to ``.repro_cache`` under the current working directory.
    """
    return os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


def cache_enabled() -> bool:
    """Whether the on-disk result cache is active (``REPRO_CACHE`` env).

    Set ``REPRO_CACHE=0`` (or ``off``/``no``/``false``) to disable all
    persistent caching; in-memory caches are unaffected.
    """
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "off", "no", "false")


def default_scale() -> float:
    """Experiment scale factor, settable via the REPRO_SCALE env var.

    1.0 corresponds to the default dynamic-instruction budgets used by the
    benchmark harness (see ``repro.harness.experiment``).  Larger values
    run longer simulations and tighten the statistics.
    """
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


DEFAULT_CONFIG = MachineConfig()
